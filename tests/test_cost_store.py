"""Shared pricing plane: round-trip parity, validated loads, byte identity.

The store's contract is that it is *invisible* in every output byte:
a sweep (or planner search) run against an enabled, pre-warmed, or
corrupted-then-healed pricing cache produces byte-identical checkpoints
— winners, counters, frontiers and keys — to a run with no cache at
all.  That only holds if the binary round-trip is bit-exact (IEEE-754
doubles through ``struct``) and every load is content-hash validated so
a damaged bundle reads as a cold start, never as wrong durations.
"""

from __future__ import annotations

import tempfile
import warnings
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.cluster import DGX1_CLUSTER_64
from repro.models.presets import MODEL_6_6B
from repro.obs import MetricsRegistry, recording
from repro.parallel.config import Method, Sharding
from repro.search.grid import best_configuration, plane_families
from repro.search.service import SweepCell, SweepOptions, run_sweep
from repro.sim.calibration import DEFAULT_CALIBRATION
from repro.sim.cost import comm_time_table, stage_time_table
from repro.sim.cost_batch import bound_partials, comm_rank_sums
from repro.sim.cost_store import (
    CostStore,
    FamilyTables,
    collect_tables,
    context_key,
    seed_caches,
    seed_from_store,
)
from repro.sim.implementation import MEGATRON_LM, OUR_IMPLEMENTATION

CONTEXT = (MODEL_6_6B, DGX1_CLUSTER_64, DEFAULT_CALIBRATION)

#: Small, fast cells spanning two implementations and shared families.
CELLS = [
    SweepCell(Method.NO_PIPELINE, 8),
    SweepCell(Method.NO_PIPELINE, 64),
    SweepCell(Method.DEPTH_FIRST, 8),
]

STAGE_FAMILIES = [(2, 1, 1, 1), (2, 1, 2, 1), (4, 1, 1, 2)]
COMM_FAMILIES = [
    (2, 1, 1, 4, Sharding.NONE),
    (2, 1, 1, 4, Sharding.PARTIAL),
]


def _clear_pricing_caches() -> None:
    stage_time_table.cache_clear()
    comm_time_table.cache_clear()
    bound_partials.cache_clear()
    comm_rank_sums.cache_clear()


def _collect(implementation=OUR_IMPLEMENTATION) -> FamilyTables:
    return collect_tables(
        *CONTEXT, implementation, STAGE_FAMILIES, COMM_FAMILIES
    )


def _checkpoint_bytes(root) -> dict[str, bytes]:
    """Result checkpoint files only — timing sidecars are wall-clock."""
    return {
        p.name: p.read_bytes()
        for p in Path(root).glob("*.json")
        if not p.name.endswith(".time.json")
    }


class TestRoundTrip:
    def setup_method(self):
        _clear_pricing_caches()

    def test_store_load_round_trip_is_bit_exact(self, tmp_path):
        tables = _collect()
        store = CostStore(tmp_path)
        path = store.store(*CONTEXT, OUR_IMPLEMENTATION, tables)
        assert path.is_file() and len(store) == 1
        loaded = store.load(*CONTEXT, OUR_IMPLEMENTATION)
        # Dataclass equality: every float of every table, no tolerance.
        assert loaded.stage == tables.stage
        assert loaded.bounds == tables.bounds
        assert loaded.comm == tables.comm

    def test_seeding_is_bit_identical_to_cold_pricing(self, tmp_path):
        store = CostStore(tmp_path)
        store.store(*CONTEXT, OUR_IMPLEMENTATION, _collect())
        _clear_pricing_caches()
        seeded = seed_from_store(store, *CONTEXT)
        assert seeded == len(STAGE_FAMILIES) * 2 + len(COMM_FAMILIES)
        warm = {
            f: stage_time_table(*CONTEXT, OUR_IMPLEMENTATION, *f)
            for f in STAGE_FAMILIES
        }
        info = stage_time_table.cache_info()
        assert (info.hits, info.misses) == (len(STAGE_FAMILIES), 0)
        _clear_pricing_caches()
        cold = {
            f: stage_time_table(*CONTEXT, OUR_IMPLEMENTATION, *f)
            for f in STAGE_FAMILIES
        }
        assert warm == cold

    def test_merge_is_first_writer_wins(self, tmp_path):
        tables = _collect()
        partial = FamilyTables(
            stage=dict(list(tables.stage.items())[:1]),
            bounds=dict(list(tables.bounds.items())[:1]),
        )
        added = partial.merge(tables)
        assert added == len(tables) - 2
        assert len(partial) == len(tables)
        # Re-merging adds nothing; existing entries were kept, not
        # replaced (same object identity for the first writer's value).
        first_key = next(iter(tables.stage))
        kept = partial.stage[first_key]
        assert partial.merge(tables) == 0
        assert partial.stage[first_key] is kept

    @settings(max_examples=25, deadline=None)
    @given(
        n_pp=st.sampled_from([1, 2, 4, 8]),
        n_loop=st.sampled_from([1, 2, 4]),
        microbatch_size=st.sampled_from([1, 2, 8]),
        n_tp=st.sampled_from([1, 4]),
        impl=st.sampled_from([OUR_IMPLEMENTATION, MEGATRON_LM]),
    )
    def test_round_trip_parity_with_fresh_pricing(
        self, n_pp, n_loop, microbatch_size, n_tp, impl
    ):
        """Property: load-after-store == the freshly priced tables."""
        if n_pp * n_loop > MODEL_6_6B.n_layers:
            return
        family = (n_pp, n_loop, microbatch_size, n_tp)
        try:
            tables = collect_tables(*CONTEXT, impl, [family], [])
        except ValueError:
            return  # family invalid for this model/cluster
        with tempfile.TemporaryDirectory() as tmp:
            store = CostStore(tmp)
            store.store(*CONTEXT, impl, tables)
            loaded = store.load(*CONTEXT, impl)
        assert loaded.stage == tables.stage
        assert loaded.bounds == tables.bounds


class TestValidatedLoads:
    def setup_method(self):
        _clear_pricing_caches()

    def _stored(self, tmp_path) -> tuple[CostStore, Path]:
        store = CostStore(tmp_path)
        path = store.store(*CONTEXT, OUR_IMPLEMENTATION, _collect())
        return store, path

    def test_flipped_data_byte_is_rejected(self, tmp_path):
        store, path = self._stored(tmp_path)
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.warns(RuntimeWarning, match="corrupt pricing bundle"):
            assert store.load(*CONTEXT, OUR_IMPLEMENTATION) is None

    def test_truncated_bundle_is_rejected(self, tmp_path):
        store, path = self._stored(tmp_path)
        path.write_bytes(path.read_bytes()[:-8])
        with pytest.warns(RuntimeWarning):
            assert store.load(*CONTEXT, OUR_IMPLEMENTATION) is None

    def test_foreign_magic_is_rejected(self, tmp_path):
        store, path = self._stored(tmp_path)
        path.write_bytes(b"NOTMINE\n" + path.read_bytes()[8:])
        with pytest.warns(RuntimeWarning):
            assert store.load(*CONTEXT, OUR_IMPLEMENTATION) is None

    def test_aliased_context_is_rejected(self, tmp_path):
        # A bundle copied under another context's name must fail the
        # context-hash check, not seed the wrong implementation's caches.
        store, path = self._stored(tmp_path)
        other = store.path_for(*CONTEXT, MEGATRON_LM)
        other.write_bytes(path.read_bytes())
        with pytest.warns(RuntimeWarning, match="stale or foreign"):
            assert store.load(*CONTEXT, MEGATRON_LM) is None

    def test_missing_bundle_is_a_silent_miss(self, tmp_path):
        store = CostStore(tmp_path)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert store.load(*CONTEXT, OUR_IMPLEMENTATION) is None

    def test_context_keys_are_distinct_per_axis(self):
        keys = {
            context_key(*CONTEXT, OUR_IMPLEMENTATION),
            context_key(*CONTEXT, MEGATRON_LM),
        }
        assert len(keys) == 2


class TestPlaneCoversTheSearch:
    def test_precomputed_plane_makes_the_search_all_hits(self):
        # The grid-level precompute contract: after pricing exactly the
        # families plane_families() enumerates, a cell's full search
        # never misses a pricing cache — the lazy path would price
        # nothing more.
        cell = SweepCell(Method.DEPTH_FIRST, 8)
        _clear_pricing_caches()
        by_impl = plane_families(MODEL_6_6B, DGX1_CLUSTER_64, [cell])
        assert by_impl
        for impl, (stage_families, comm_families) in by_impl.items():
            assert stage_families
            collect_tables(*CONTEXT, impl, stage_families, comm_families)
        before_stage = stage_time_table.cache_info()
        before_comm = comm_time_table.cache_info()
        best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, cell.method, cell.batch_size
        )
        after_stage = stage_time_table.cache_info()
        after_comm = comm_time_table.cache_info()
        assert after_stage.misses == before_stage.misses
        assert after_comm.misses == before_comm.misses
        assert after_stage.hits > before_stage.hits


class TestSweepByteIdentity:
    def _run(self, ckpt_dir, pricing_cache=None, **kwargs):
        _clear_pricing_caches()
        options = SweepOptions(
            backend=kwargs.pop("backend", "serial"),
            checkpoint_dir=ckpt_dir,
            pricing_cache=pricing_cache,
            progress=False,
            **kwargs,
        )
        return run_sweep(MODEL_6_6B, DGX1_CLUSTER_64, CELLS, options=options)

    def test_store_off_on_prewarmed_and_healed_runs_are_identical(
        self, tmp_path
    ):
        cache = tmp_path / "plane"
        baseline = self._run(tmp_path / "off")
        reference = _checkpoint_bytes(tmp_path / "off")
        assert len(reference) == len(CELLS)

        # Cold store: the prewarm pass prices and writes the bundles.
        cold = self._run(tmp_path / "on", pricing_cache=cache)
        assert cold == baseline
        assert _checkpoint_bytes(tmp_path / "on") == reference
        assert len(CostStore(cache)) >= 1

        # Pre-warmed store: everything seeds from disk.
        warm = self._run(tmp_path / "warm", pricing_cache=cache)
        assert warm == baseline
        assert _checkpoint_bytes(tmp_path / "warm") == reference

        # Corrupted store: loads are rejected, the sweep re-prices, and
        # the heal pass rewrites valid bundles — outputs never change.
        for bundle in cache.glob("*.plane.bin"):
            blob = bytearray(bundle.read_bytes())
            blob[-3] ^= 0xFF
            bundle.write_bytes(bytes(blob))
        with pytest.warns(RuntimeWarning, match="corrupt pricing bundle"):
            healed = self._run(tmp_path / "healed", pricing_cache=cache)
        assert healed == baseline
        assert _checkpoint_bytes(tmp_path / "healed") == reference
        store = CostStore(cache)
        _clear_pricing_caches()
        assert store.load(*CONTEXT, OUR_IMPLEMENTATION) is not None

    def test_checkpoint_keys_ignore_the_pricing_cache(self, tmp_path):
        # The cache is outcome-neutral config, not search identity: the
        # same cells land under the same content-hash filenames whether
        # or not (and wherever) a pricing cache is configured.
        self._run(tmp_path / "a")
        self._run(tmp_path / "b", pricing_cache=tmp_path / "plane")
        assert sorted(_checkpoint_bytes(tmp_path / "a")) == sorted(
            _checkpoint_bytes(tmp_path / "b")
        )

    def test_multiprocessing_workers_seed_from_the_store(self, tmp_path):
        cache = tmp_path / "plane"
        serial = self._run(tmp_path / "serial")
        reference = _checkpoint_bytes(tmp_path / "serial")
        registry = MetricsRegistry(actor="test-sweep")
        with recording(registry):
            parallel = self._run(
                tmp_path / "mp",
                pricing_cache=cache,
                backend="multiprocessing",
                processes=2,
            )
        assert parallel == serial
        assert _checkpoint_bytes(tmp_path / "mp") == reference
        counters = registry.counters
        assert counters.get("pricing.store.writes", 0) >= 1
        # Satellite fix: per-worker warm-start deltas are shipped back in
        # each CellReport and attributed by the coordinator, so
        # multiprocessing sweeps no longer under-report them.
        lookups = counters.get(
            "search.warm_start.hits", 0
        ) + counters.get("search.warm_start.misses", 0)
        assert lookups > 0
