"""Edge cases and error branches across the experiment/simulation stack."""

from __future__ import annotations

import pytest

from repro.experiments.fig5 import run_fig5
from repro.experiments.fig7 import Fig7Panel, panel_setup
from repro.experiments.tableE import format_table_e
from repro.hardware.cluster import DGX1_CLUSTER_64
from repro.models.presets import MODEL_6_6B, MODEL_52B
from repro.parallel.config import Method, ParallelConfig, ScheduleKind
from repro.search.grid import SearchOutcome
from repro.sim.simulator import simulate
from repro.viz.timeline import render_timeline


class TestDriverErrors:
    def test_fig5_unknown_panel(self):
        with pytest.raises(ValueError, match="unknown panel"):
            run_fig5("13B")

    def test_fig7_unknown_panel(self):
        with pytest.raises(ValueError, match="unknown panel"):
            panel_setup("900B")

    def test_fig7_known_panels(self):
        assert panel_setup("52B")[0] is MODEL_52B
        assert panel_setup("6.6B")[0] is MODEL_6_6B
        assert panel_setup("6.6B-ethernet")[1].inter_node.name.startswith("Ethernet")

    def test_table_e_renders_oom_rows(self):
        panel = Fig7Panel(
            name="52B",
            spec=MODEL_52B,
            cluster=DGX1_CLUSTER_64,
            outcomes={
                Method.NO_PIPELINE: [
                    SearchOutcome(
                        method=Method.NO_PIPELINE, batch_size=1,
                        best=None, n_tried=0, n_excluded=5,
                    )
                ]
            },
        )
        out = format_table_e(panel)
        assert "OOM" in out


class TestSimulatorEdgeCases:
    def test_single_gpu_config(self):
        config = ParallelConfig(
            n_dp=1, n_pp=1, n_tp=1, microbatch_size=1, n_microbatches=1,
            schedule=ScheduleKind.BREADTH_FIRST,
        )
        result = simulate(MODEL_6_6B, config, DGX1_CLUSTER_64)
        assert result.step_time > 0
        assert result.pp_comm_busy == 0.0
        assert result.dp_comm_busy == 0.0

    def test_two_stage_minimal_pipeline(self):
        config = ParallelConfig(
            n_dp=1, n_pp=2, n_tp=1, microbatch_size=1, n_microbatches=2,
            schedule=ScheduleKind.GPIPE,
        )
        result = simulate(MODEL_6_6B, config, DGX1_CLUSTER_64)
        assert 0 < result.utilization < 1

    def test_more_bandwidth_never_slower(self):
        import dataclasses

        config = ParallelConfig(
            n_dp=8, n_pp=4, n_tp=2, microbatch_size=1, n_microbatches=8,
            schedule=ScheduleKind.BREADTH_FIRST,
        )
        slow = simulate(MODEL_6_6B, config, DGX1_CLUSTER_64)
        fast_net = dataclasses.replace(
            DGX1_CLUSTER_64.inter_node, bandwidth=DGX1_CLUSTER_64.inter_node.bandwidth * 4
        )
        fast_cluster = dataclasses.replace(DGX1_CLUSTER_64, inter_node=fast_net)
        fast = simulate(MODEL_6_6B, config, fast_cluster)
        assert fast.step_time <= slow.step_time

    def test_larger_batch_more_utilization_fixed_grid(self):
        def util(n_mb):
            config = ParallelConfig(
                n_dp=1, n_pp=8, n_tp=8, microbatch_size=1,
                n_microbatches=n_mb, n_loop=4,
                schedule=ScheduleKind.BREADTH_FIRST,
            )
            return simulate(MODEL_52B, config, DGX1_CLUSTER_64).utilization

        assert util(64) > util(8)


class TestTimelineEdgeCases:
    def test_zero_length_timeline(self):
        from repro.sim.timeline import TimelineEvent

        events = [TimelineEvent(0, "compute", 0.0, 0.0, "x", "forward")]
        assert "zero-length" in render_timeline(events)

    def test_malformed_label_does_not_crash(self):
        from repro.sim.timeline import TimelineEvent

        events = [TimelineEvent(0, "compute", 0.0, 1.0, "weird", "forward")]
        out = render_timeline(events, width=10)
        assert "rank 0" in out
