"""Tests for the multi-stream list-scheduling engine."""

from __future__ import annotations

import pytest

from repro.sim.engine import EngineDeadlock, Instruction, run_streams


def instr(uid, dur=1.0, deps=(), label=""):
    return Instruction(uid=uid, duration=dur, deps=tuple(deps), label=label)


class TestBasics:
    def test_sequential_stream(self):
        result = run_streams({(0, "c"): [instr(("a",)), instr(("b",))]})
        assert result.finish_times[("a",)] == pytest.approx(1.0)
        assert result.finish_times[("b",)] == pytest.approx(2.0)

    def test_parallel_streams_overlap(self):
        result = run_streams({
            (0, "c"): [instr(("a",), 2.0)],
            (0, "d"): [instr(("b",), 3.0)],
        })
        assert result.makespan == pytest.approx(3.0)

    def test_dependency_delays_start(self):
        result = run_streams({
            (0, "c"): [instr(("a",), 2.0)],
            (1, "c"): [instr(("b",), 1.0, deps=[("a",)])],
        })
        assert result.finish_times[("b",)] == pytest.approx(3.0)

    def test_head_of_line_blocking(self):
        # Second instruction on stream 1 could run immediately, but the
        # blocked head holds it back (FIFO semantics).
        result = run_streams({
            (0, "c"): [instr(("slow",), 5.0)],
            (1, "c"): [instr(("blocked",), 1.0, deps=[("slow",)]), instr(("free",), 1.0)],
        })
        assert result.finish_times[("free",)] == pytest.approx(7.0)

    def test_zero_duration_allowed(self):
        result = run_streams({(0, "c"): [instr(("z",), 0.0)]})
        assert result.makespan == 0.0

    def test_empty_program(self):
        assert run_streams({}).makespan == 0.0


class TestAccounting:
    def test_busy_time(self):
        result = run_streams({(0, "c"): [instr(("a",), 2.0), instr(("b",), 3.0)]})
        assert result.stream_busy[(0, "c")] == pytest.approx(5.0)

    def test_events_recorded_in_order(self):
        result = run_streams(
            {(0, "c"): [instr(("a",)), instr(("b",))]}, record_events=True
        )
        assert [e.label for e in result.events] == ["", ""]
        assert result.events[0].start <= result.events[1].start

    def test_events_skipped_when_disabled(self):
        result = run_streams(
            {(0, "c"): [instr(("a",))]}, record_events=False
        )
        assert result.events == []

    def test_event_duration(self):
        result = run_streams({(0, "c"): [instr(("a",), 2.5)]})
        assert result.events[0].duration == pytest.approx(2.5)


class TestEventDriven:
    """Behaviours specific to the heap + reverse-dependency-index engine."""

    def test_long_cross_stream_chain(self):
        # A strict ping-pong between two streams: every instruction is a
        # blocking point, so everything goes through the ready-heap.
        n = 50
        left, right = [], []
        prev = None
        for i in range(n):
            queue, uid = (left, ("L", i)) if i % 2 == 0 else (right, ("R", i))
            queue.append(
                instr(uid, 1.0, deps=[prev] if prev is not None else [])
            )
            prev = uid
        result = run_streams({(0, "c"): left, (1, "c"): right})
        assert result.makespan == pytest.approx(float(n))
        assert result.stream_busy[(0, "c")] == pytest.approx(n / 2)

    def test_dependent_behind_blocked_head_waits(self):
        # The release of a non-head instruction must not start it early.
        result = run_streams({
            (0, "c"): [instr(("gate",), 10.0)],
            (1, "c"): [
                instr(("head",), 1.0, deps=[("gate",)]),
                instr(("tail",), 1.0),  # dep-free, but FIFO-blocked
            ],
        })
        assert result.finish_times[("tail",)] == pytest.approx(12.0)

    def test_zero_duration_chain(self):
        result = run_streams({
            (0, "c"): [instr(("a",), 0.0), instr(("b",), 0.0)],
            (1, "c"): [instr(("c",), 0.0, deps=[("b",)])],
        })
        assert result.makespan == 0.0
        assert len(result.events) == 3

    def test_diamond_dependency_takes_slowest_path(self):
        result = run_streams({
            (0, "c"): [instr(("src",), 1.0)],
            (1, "c"): [instr(("fast",), 1.0, deps=[("src",)])],
            (2, "c"): [instr(("slow",), 5.0, deps=[("src",)])],
            (3, "c"): [instr(("sink",), 1.0, deps=[("fast",), ("slow",)])],
        })
        assert result.finish_times[("sink",)] == pytest.approx(7.0)

    def test_instruction_immutable(self):
        instruction = instr(("a",))
        with pytest.raises(AttributeError):
            instruction.duration = 2.0


class TestErrors:
    def test_deadlock_raises_with_blocked_heads(self):
        with pytest.raises(EngineDeadlock, match="missing"):
            run_streams({
                (0, "c"): [instr(("a",), deps=[("missing",)], label="a-op")],
            })

    def test_cyclic_deadlock(self):
        with pytest.raises(EngineDeadlock):
            run_streams({
                (0, "c"): [instr(("a",), deps=[("b",)])],
                (1, "c"): [instr(("b",), deps=[("a",)])],
            })

    def test_duplicate_uid_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            run_streams({
                (0, "c"): [instr(("a",))],
                (1, "c"): [instr(("a",))],
            })

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            Instruction(uid=("x",), duration=-1.0)
