"""Parity suite: the event-driven engine vs the seed sweep engine.

The event-driven engine (:func:`repro.sim.engine.run_streams`) must
reproduce the seed relaxation engine
(:func:`repro.sim.engine_sweep.run_streams_sweep`) *exactly* — same
``finish_times``, ``stream_busy`` and ``makespan`` — on every schedule
kind and data-parallel sharding mode, and must report the same deadlock
diagnostics.  Both engines compute identical max/add float arithmetic,
so the comparison is bit-exact, not approximate.
"""

from __future__ import annotations

import pytest

from repro.core.schedules.base import build_schedule
from repro.core.schedules.hybrid import build_hybrid_schedule
from repro.hardware.cluster import DGX1_CLUSTER_64, DGX1_CLUSTER_64_ETHERNET
from repro.models.presets import MODEL_6_6B, MODEL_52B
from repro.parallel.config import ParallelConfig, ScheduleKind, Sharding
from repro.sim.cost import CostModel
from repro.sim.engine import EngineDeadlock, Instruction, run_streams
from repro.sim.engine_sweep import run_streams_sweep
from repro.sim.implementation import MEGATRON_LM, OUR_IMPLEMENTATION
from repro.sim.program import build_program


def build_streams(spec, cluster, impl, *, prebuilt_schedule=None, **config_kw):
    config = ParallelConfig(**config_kw)
    cost = CostModel(
        spec=spec, config=config, cluster=cluster, implementation=impl
    )
    schedule = prebuilt_schedule
    if schedule is None:
        schedule = build_schedule(
            config.schedule, config.n_pp, config.n_microbatches, config.n_loop
        )
    return build_program(cost, schedule)


def assert_parity(streams):
    new = run_streams(streams)
    seed = run_streams_sweep(streams)
    assert new.makespan == seed.makespan
    assert new.finish_times == seed.finish_times
    assert new.stream_busy == seed.stream_busy
    assert [
        (e.start, e.end, e.rank, e.stream, e.label, e.category)
        for e in new.events
    ] == [
        (e.start, e.end, e.rank, e.stream, e.label, e.category)
        for e in seed.events
    ]
    return new


#: (name, spec, cluster, implementation, config kwargs) covering all five
#: schedule kinds across the DP sharding modes each one supports.
CASES = [
    (
        "gpipe-dp0",
        MODEL_52B,
        DGX1_CLUSTER_64,
        OUR_IMPLEMENTATION,
        dict(n_dp=1, n_pp=8, n_tp=8, microbatch_size=1, n_microbatches=8,
             schedule=ScheduleKind.GPIPE),
    ),
    (
        "gpipe-dp_ps",
        MODEL_52B,
        DGX1_CLUSTER_64,
        OUR_IMPLEMENTATION,
        dict(n_dp=2, n_pp=4, n_tp=8, microbatch_size=1, n_microbatches=8,
             sharding=Sharding.PARTIAL, schedule=ScheduleKind.GPIPE),
    ),
    (
        "1f1b-dp0-serial-dp",
        MODEL_6_6B,
        DGX1_CLUSTER_64,
        MEGATRON_LM,
        dict(n_dp=4, n_pp=4, n_tp=2, microbatch_size=1, n_microbatches=8,
             schedule=ScheduleKind.ONE_F_ONE_B),
    ),
    (
        "depth-first-dp0",
        MODEL_6_6B,
        DGX1_CLUSTER_64,
        MEGATRON_LM,
        dict(n_dp=2, n_pp=4, n_tp=2, microbatch_size=2, n_microbatches=8,
             n_loop=2, schedule=ScheduleKind.DEPTH_FIRST),
    ),
    (
        "breadth-first-dp0",
        MODEL_52B,
        DGX1_CLUSTER_64,
        OUR_IMPLEMENTATION,
        dict(n_dp=1, n_pp=8, n_tp=8, microbatch_size=1, n_microbatches=8,
             n_loop=4, schedule=ScheduleKind.BREADTH_FIRST),
    ),
    (
        "breadth-first-dp_fs",
        MODEL_6_6B,
        DGX1_CLUSTER_64,
        OUR_IMPLEMENTATION,
        dict(n_dp=4, n_pp=4, n_tp=2, microbatch_size=1, n_microbatches=16,
             n_loop=2, sharding=Sharding.FULL,
             schedule=ScheduleKind.BREADTH_FIRST),
    ),
    (
        "breadth-first-dp_fs-ethernet",
        MODEL_6_6B,
        DGX1_CLUSTER_64_ETHERNET,
        OUR_IMPLEMENTATION,
        dict(n_dp=8, n_pp=2, n_tp=4, microbatch_size=1, n_microbatches=8,
             n_loop=2, sharding=Sharding.FULL,
             schedule=ScheduleKind.BREADTH_FIRST),
    ),
    (
        "no-pipeline-dp_fs",
        MODEL_6_6B,
        DGX1_CLUSTER_64,
        OUR_IMPLEMENTATION,
        dict(n_dp=32, n_pp=1, n_tp=2, microbatch_size=1, n_microbatches=4,
             n_loop=2, sharding=Sharding.FULL,
             schedule=ScheduleKind.BREADTH_FIRST),
    ),
]


@pytest.mark.parametrize(
    "spec, cluster, impl, config_kw",
    [case[1:] for case in CASES],
    ids=[case[0] for case in CASES],
)
def test_schedule_parity(spec, cluster, impl, config_kw):
    streams = build_streams(spec, cluster, impl, **config_kw)
    result = assert_parity(streams)
    assert result.makespan > 0


@pytest.mark.parametrize("sequence_size", [4, 8, 16])
def test_hybrid_schedule_parity(sequence_size):
    """The fifth schedule kind: the Section 4.2 hybrid."""
    config_kw = dict(
        n_dp=2, n_pp=4, n_tp=2, microbatch_size=1, n_microbatches=16,
        n_loop=2, sharding=Sharding.FULL, schedule=ScheduleKind.DEPTH_FIRST,
    )
    schedule = build_hybrid_schedule(4, 16, 2, sequence_size=sequence_size)
    streams = build_streams(
        MODEL_6_6B, DGX1_CLUSTER_64, OUR_IMPLEMENTATION,
        prebuilt_schedule=schedule, **config_kw,
    )
    assert_parity(streams)


def test_label_free_program_same_times():
    """The search fast path (no labels) must not change any timing."""
    config = ParallelConfig(
        n_dp=2, n_pp=4, n_tp=2, microbatch_size=1, n_microbatches=8,
        n_loop=2, sharding=Sharding.FULL, schedule=ScheduleKind.BREADTH_FIRST,
    )
    cost = CostModel(
        spec=MODEL_6_6B, config=config, cluster=DGX1_CLUSTER_64,
        implementation=OUR_IMPLEMENTATION,
    )
    schedule = build_schedule(
        config.schedule, config.n_pp, config.n_microbatches, config.n_loop
    )
    labelled = run_streams(build_program(cost, schedule), record_events=False)
    bare = run_streams(
        build_program(cost, schedule, record_events=False),
        record_events=False,
    )
    assert bare.finish_times == labelled.finish_times
    assert bare.stream_busy == labelled.stream_busy
    assert bare.events == []


class TestDeadlockParity:
    def streams(self):
        return {
            (0, "c"): [
                Instruction(uid=("a",), duration=1.0, deps=(("b",),),
                            label="a-op"),
            ],
            (1, "c"): [
                Instruction(uid=("b",), duration=1.0, deps=(("a",),),
                            label="b-op"),
                Instruction(uid=("c",), duration=1.0),
            ],
        }

    def test_same_diagnostics_on_cycle(self):
        with pytest.raises(EngineDeadlock) as new_err:
            run_streams(self.streams())
        with pytest.raises(EngineDeadlock) as seed_err:
            run_streams_sweep(self.streams())
        assert str(new_err.value) == str(seed_err.value)
        assert "a-op" in str(new_err.value)
        assert "b-op" in str(new_err.value)

    def test_missing_dependency_reported(self):
        streams = {
            (0, "c"): [
                Instruction(uid=("x",), duration=1.0, deps=(("ghost",),)),
            ],
        }
        with pytest.raises(EngineDeadlock, match="ghost"):
            run_streams(streams)

    def test_partial_progress_before_deadlock(self):
        """Executable prefixes run before the deadlock is detected, and
        already-finished work is not listed as missing."""
        streams = {
            (0, "c"): [
                Instruction(uid=("ok",), duration=1.0, label="fine"),
                Instruction(uid=("stuck",), duration=1.0,
                            deps=(("ok",), ("ghost",)), label="stuck-op"),
            ],
        }
        with pytest.raises(EngineDeadlock) as err:
            run_streams(streams)
        message = str(err.value)
        assert "stuck-op" in message
        assert "ghost" in message
        assert "('ok',)" not in message
