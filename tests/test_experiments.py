"""Tests for the experiment drivers (fast paths only; the benches run the
full versions)."""

from __future__ import annotations

import pytest

from repro.experiments import runner as runner_module
from repro.experiments.fig2 import run_fig2
from repro.experiments.fig3 import format_fig3, run_fig3
from repro.experiments.fig4 import run_fig4
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig9 import run_fig9
from repro.experiments.table41 import run_table41
from repro.experiments.table51 import format_table51, run_table51
from repro.parallel.config import Method
from repro.sgd.tradeoff import TradeoffPoint, UtilizationCurve, tradeoff_curve


class TestFig2:
    def test_four_curves(self):
        curves = run_fig2(overlap=True)
        assert set(curves) == {
            "Looped (8x)", "Looped (2x)", "Non-looped", "Data-parallel"
        }

    def test_looped_8x_dominates_at_small_beta(self):
        curves = run_fig2(overlap=True)
        at_one = {name: pts[0][1] for name, pts in curves.items()}
        assert at_one["Looped (8x)"] > at_one["Looped (2x)"] > at_one["Non-looped"]

    def test_overlap_panel_beats_no_overlap(self):
        a = run_fig2(overlap=True)
        b = run_fig2(overlap=False)
        for name in a:
            for (beta1, u1), (beta2, u2) in zip(a[name], b[name]):
                assert beta1 == beta2
                assert u1 >= u2 - 1e-9


class TestFig3:
    def test_placements(self):
        p = run_fig3()
        assert p["standard"].layers_of_device(0) == [0, 1, 2, 3]
        assert p["looping"].layers_of_device(0) == [0, 4, 8, 12]

    def test_format(self):
        out = format_fig3()
        assert "standard" in out and "looping" in out


class TestFig4:
    @pytest.fixture(scope="class")
    def panels(self):
        return run_fig4(width=60)

    def test_four_panels(self, panels):
        assert len(panels) == 4

    def test_looped_faster_than_non_looped(self, panels):
        by_name = {p.name: p.result for p in panels}
        assert (
            by_name["(d) Looped, breadth-first"].step_time
            < by_name["(a) Non-looped, GPipe"].step_time
        )

    def test_breadth_first_fastest(self, panels):
        times = {p.name: p.result.step_time for p in panels}
        assert min(times, key=times.get) == "(d) Looped, breadth-first"

    def test_renderings_non_empty(self, panels):
        for p in panels:
            assert "rank 0" in p.rendering


class TestFig6:
    def test_depth_first_declines_at_large_batch(self):
        curves = run_fig6(64)
        df = dict(curves["Depth-first"])
        assert df[8] < df[1]

    def test_breadth_first_improves_at_small_batch(self):
        curves = run_fig6(16)
        bf = dict(curves["Breadth-first"])
        assert bf[8] > bf[1]


class TestFig9:
    def test_breadth_first_fs_fastest_fs(self):
        panels = {p.name: p.result.step_time for p in run_fig9()}
        assert (
            panels["(d) Breadth-first (DP_FS)"]
            < panels["(b) Depth-first (DP_FS)"]
        )

    def test_dp0_breadth_no_slower_than_depth(self):
        panels = {p.name: p.result.step_time for p in run_fig9()}
        assert (
            panels["(c) Breadth-first (DP0)"]
            <= panels["(a) Depth-first (DP0)"] * 1.05
        )


class TestTables:
    def test_table41_breadth_first_good_everywhere(self):
        rows = {r.method: r for r in run_table41(n_mb=32)}
        bf_fs = rows["Breadth-first (DP_FS)"]
        # Small bubble, minimal state memory, full DP overlap.
        assert bf_fs.bubble < 0.1
        assert bf_fs.state_memory == 2.0
        assert bf_fs.dp_overlap > 0.8

    def test_table41_depth_first_poor_dp_overlap(self):
        # With N_mb > N_PP the depth-first window (N_PP micro-batches)
        # falls below breadth-first's (the whole batch).
        rows = {r.method: r for r in run_table41(n_mb=32)}
        assert rows["Depth-first"].dp_overlap < rows["Breadth-first"].dp_overlap

    def test_table41_no_pipeline_fs_heavy_network(self):
        rows = {r.method: r for r in run_table41()}
        assert rows["No pipeline (DP_FS)"].dp_network > 10

    def test_table41_invalid_setting(self):
        with pytest.raises(ValueError, match="stages"):
            run_table41(n_layers=4, n_pp=8, n_loop=4)

    def test_table51_models(self):
        rows = run_table51()
        assert [m.name for m in rows] == ["52B", "6.6B"]

    def test_table51_format(self):
        out = format_table51()
        assert "8192" in out and "4096" in out


class TestFig8Machinery:
    def test_tradeoff_points_have_paper_scale(self):
        curve = UtilizationCurve("Breadth-first", ((0.14, 0.39), (2.0, 0.45)))
        points = tradeoff_curve(
            curve, [4096], 6780.0, 4.3e14, 125e12
        )
        p = points[0]
        assert isinstance(p, TradeoffPoint)
        # Figure 1a: best method trains the 52B model in O(10) days on
        # 4096 V100s at ~30-60k GPU-days.
        assert 2 < p.time_days < 60
        assert 10_000 < p.cost_gpu_days < 150_000


class TestMethodEnum:
    def test_four_methods(self):
        assert len(list(Method)) == 4


class TestCalibrationCLI:
    """The `calibrate` subcommand and the --calibration flag (the fit
    itself is covered in tests/test_fit.py; here a stub keeps the CLI
    paths fast)."""

    def _stub_result(self, improved: bool):
        from repro.fit import (
            AnchorEvaluator,
            FitParameter,
            FitWeights,
            objective_value,
            weighted_throughput_error,
        )
        from repro.fit.report import FitResult
        from repro.paper_data import PAPER_ANCHORS
        from repro.sim.calibration import DEFAULT_CALIBRATION, Calibration

        fitted = Calibration(kernel_efficiency_max=0.62)
        residuals = AnchorEvaluator(PAPER_ANCHORS[:2]).evaluate(
            DEFAULT_CALIBRATION
        )
        error = weighted_throughput_error(residuals)
        objective = objective_value(residuals)
        scale = 0.5 if improved else 1.0
        return FitResult(
            initial_calibration=DEFAULT_CALIBRATION,
            fitted_calibration=fitted,
            parameters=(FitParameter("kernel_efficiency_max", 0.3, 1.0),),
            weights=FitWeights(),
            residuals_before=residuals,
            residuals_after=residuals,
            objective_before=objective,
            objective_after=objective * scale,
            throughput_error_before=error,
            throughput_error_after=error * scale,
            n_evaluations=7,
            trace=(),
        )

    def test_calibrate_dispatch_and_out_file(
        self, tmp_path, monkeypatch, capsys
    ):
        from repro.fit import load_calibration

        recorded = {}

        def fake_fit(*, quick):
            recorded["quick"] = quick
            return self._stub_result(improved=True)

        monkeypatch.setattr(runner_module, "fit_calibration", fake_fit)
        out = tmp_path / "fit.json"
        code = runner_module.main(["calibrate", "--quick", "--out", str(out)])
        assert code == 0
        assert recorded == {"quick": True}
        assert (
            load_calibration(out)
            == self._stub_result(True).fitted_calibration
        )
        assert "weighted mean relative throughput error" in capsys.readouterr().out

    def test_calibrate_fails_loudly_without_improvement(self, monkeypatch):
        monkeypatch.setattr(
            runner_module,
            "fit_calibration",
            lambda *, quick: self._stub_result(improved=False),
        )
        assert runner_module.main(["calibrate"]) == 1

    def test_calibration_flag_reaches_sweep_options(self, tmp_path):
        import argparse

        from repro.fit import save_calibration
        from repro.sim.calibration import Calibration

        custom = Calibration(tokens_half_point=99.0)
        path = save_calibration(tmp_path / "c.json", custom)
        args = argparse.Namespace(
            backend="serial", jobs=None, checkpoint_dir=None, workers=2,
            resume=False, progress=False, no_bound_pruning=False,
            calibration=str(path),
        )
        options = runner_module.build_sweep_options(args)
        assert options.calibration == custom

    def test_default_options_use_hand_tuned_calibration(self):
        import argparse

        from repro.sim.calibration import DEFAULT_CALIBRATION

        args = argparse.Namespace(
            backend="serial", jobs=None, checkpoint_dir=None, workers=2,
            resume=False, progress=False, no_bound_pruning=False,
            calibration=None,
        )
        assert (
            runner_module.build_sweep_options(args).calibration
            is DEFAULT_CALIBRATION
        )


class TestObjectiveCLI:
    """--objective/--memory-headroom flags and the frontier subcommand."""

    def _args(self, **overrides):
        import argparse

        base = dict(
            backend="serial", jobs=None, checkpoint_dir=None, workers=2,
            resume=False, progress=False, no_bound_pruning=False,
            calibration=None, objective="throughput", memory_headroom=None,
        )
        base.update(overrides)
        return argparse.Namespace(**base)

    def test_objective_flags_reach_sweep_options(self):
        from repro.search.objective import (
            MemoryConstrainedThroughput,
            ParetoFrontObjective,
            ThroughputObjective,
        )

        assert (
            runner_module.build_sweep_options(self._args()).objective
            == ThroughputObjective()
        )
        assert (
            runner_module.build_sweep_options(
                self._args(objective="pareto")
            ).objective
            == ParetoFrontObjective()
        )
        options = runner_module.build_sweep_options(
            self._args(objective="memory-constrained", memory_headroom=0.4)
        )
        assert options.objective == MemoryConstrainedThroughput(headroom=0.4)

    def test_headroom_without_constrained_objective_rejected(self):
        with pytest.raises(ValueError, match="memory-headroom"):
            runner_module.build_sweep_options(
                self._args(memory_headroom=0.4)
            )


class TestFrontierExperiment:
    def test_run_frontier_single_batch(self):
        from repro.experiments.frontier import format_frontier, run_frontier
        from repro.parallel.config import ScheduleKind

        cells = run_frontier("6.6B", batch_sizes=[64])
        assert len(cells) == 1
        cell = cells[0]
        assert cell.batch_size == 64
        assert set(cell.outcomes) == set(Method)
        assert cell.frontier
        # Every frontier point is non-dominated against every per-method
        # frontier point (merging loses nothing).
        from repro.search.objective import dominates

        all_points = [
            r
            for outcome in cell.outcomes.values()
            for r in (outcome.frontier or ())
        ]
        for p in cell.frontier:
            assert not any(
                dominates(q, p.result) for q in all_points if q is not p.result
            )
        # The PR 3 finding, frontier-shaped: a hybrid or depth-first
        # schedule reaches a trade-off no breadth-first config dominates.
        assert cell.hybrid_or_depth_first
        schedules = {p.schedule for p in cell.hybrid_or_depth_first}
        assert schedules <= {ScheduleKind.HYBRID, ScheduleKind.DEPTH_FIRST}
        assert set(cell.hybrid_or_depth_first) <= set(cell.non_breadth_first)
        text = format_frontier(cells)
        assert "combined throughput/memory frontier" in text
        assert "non-breadth-first frontier points at B=64" in text

    def test_frontier_cli_exit_status(self, monkeypatch, capsys):
        # Exit 1 when breadth-first dominates everywhere (stubbed), 0
        # when a foothold exists (the real quick run is CI's job).
        class FakeCell:
            batch_size = 8
            non_breadth_first = ()
            hybrid_or_depth_first = ()

        monkeypatch.setattr(
            runner_module, "run_frontier", lambda *a, **k: [FakeCell()]
        )
        monkeypatch.setattr(
            runner_module, "format_frontier", lambda cells, chart=True: "(stub)"
        )
        assert runner_module.main(["frontier", "--quick"]) == 1
        assert "FAIL" in capsys.readouterr().err

        class FakeCellWithFoothold(FakeCell):
            class _P:
                class schedule:
                    value = "hybrid"
                throughput_tflops = 1.0
                memory_gb = 1.0
            non_breadth_first = (_P(),)
            hybrid_or_depth_first = (_P(),)

        monkeypatch.setattr(
            runner_module,
            "run_frontier",
            lambda *a, **k: [FakeCellWithFoothold()],
        )
        assert runner_module.main(["frontier", "--quick"]) == 0
