"""Tests for the calibration-fitting subsystem (``repro.fit``).

Covers the bounded optimizers on analytic functions, the anchor residual
evaluator against direct simulation, the end-to-end fitter (improvement,
determinism, bound handling), calibration JSON round-trips through the
sweep serializer (including the checkpoint content-hash contract), the
constructor validation the fitter relies on, and the committed
``fitted_calibration.json`` together with the per-anchor tolerance bands
in ``paper_data``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.fit import (
    FIT_PARAMETERS,
    AnchorEvaluator,
    BoundedObjective,
    FitParameter,
    FitWeights,
    anchor_environment,
    coordinate_descent,
    fit_calibration,
    format_fit_result,
    load_calibration,
    nelder_mead,
    objective_value,
    save_calibration,
    weighted_throughput_error,
)
from repro.hardware.cluster import DGX1_CLUSTER_64
from repro.models.presets import MODEL_6_6B
from repro.paper_data import PAPER_ANCHORS
from repro.search.cell import SweepCell
from repro.search.service.serialize import (
    calibration_from_json,
    calibration_to_json,
    canonical_dumps,
    cell_key,
)
from repro.sim.calibration import DEFAULT_CALIBRATION, Calibration
from repro.sim.simulator import simulate
from repro.utils.units import GB

REPO_ROOT = Path(__file__).resolve().parent.parent
FITTED_PATH = REPO_ROOT / "fitted_calibration.json"

#: A cheap fitting problem for end-to-end fitter tests: two parameters,
#: a four-anchor subset spanning both models and both fabrics.
CHEAP_PARAMETERS = (
    FitParameter("kernel_efficiency_max", 0.3, 1.0),
    FitParameter("tokens_half_point", 1.0, 2000.0),
)
CHEAP_ANCHORS = (
    PAPER_ANCHORS[0], PAPER_ANCHORS[3], PAPER_ANCHORS[8], PAPER_ANCHORS[10],
)


@pytest.fixture(scope="module")
def cheap_fit():
    return fit_calibration(
        CHEAP_ANCHORS, parameters=CHEAP_PARAMETERS, quick=True
    )


class TestOptimizers:
    def quadratic(self, minimum):
        def f(x):
            return sum((xi - mi) ** 2 for xi, mi in zip(x, minimum))
        return f

    def test_coordinate_descent_finds_interior_minimum(self):
        objective = BoundedObjective(
            self.quadratic([0.3, -1.0]), [(-2.0, 2.0), (-2.0, 2.0)]
        )
        point, value = coordinate_descent(objective, [1.5, 1.5], rounds=12)
        assert value < 1e-3
        assert point == pytest.approx((0.3, -1.0), abs=0.05)

    def test_nelder_mead_polishes_to_high_precision(self):
        objective = BoundedObjective(
            self.quadratic([0.3, -1.0]), [(-2.0, 2.0), (-2.0, 2.0)]
        )
        point, _ = coordinate_descent(objective, [1.5, 1.5], rounds=4)
        point, value = nelder_mead(objective, point, max_iterations=200)
        assert value < 1e-8

    def test_bounds_are_respected_when_minimum_is_outside(self):
        objective = BoundedObjective(self.quadratic([5.0]), [(0.0, 1.0)])
        point, value = coordinate_descent(objective, [0.5], rounds=10)
        point, value = nelder_mead(objective, point, max_iterations=100)
        assert point[0] == pytest.approx(1.0, abs=1e-6)

    def test_deterministic_evaluation_sequence(self):
        def run():
            objective = BoundedObjective(
                self.quadratic([0.1, 0.2, 0.3]), [(-1.0, 1.0)] * 3
            )
            point, value = coordinate_descent(objective, [0.9, -0.9, 0.0])
            point, value = nelder_mead(objective, point)
            return point, value, objective.n_evaluations
        assert run() == run()

    def test_memoization_counts_distinct_points_only(self):
        calls = []

        def f(x):
            calls.append(tuple(x))
            return x[0] ** 2

        objective = BoundedObjective(f, [(-1.0, 1.0)])
        for _ in range(3):
            objective([0.5])
        assert objective.n_evaluations == 1
        assert len(calls) == 1

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError, match="invalid bound"):
            BoundedObjective(lambda x: 0.0, [(1.0, 1.0)])

    def test_trace_records_improvements_in_order(self):
        objective = BoundedObjective(self.quadratic([0.0]), [(-1.0, 1.0)])
        coordinate_descent(objective, [0.9], rounds=6)
        values = [step.value for step in objective.trace]
        assert values == sorted(values, reverse=True)


class TestResiduals:
    def test_evaluator_matches_direct_simulation(self):
        anchor = PAPER_ANCHORS[8]  # E.2 BF B=256 FS (6.6B, InfiniBand)
        spec, cluster = anchor_environment(anchor)
        assert spec == MODEL_6_6B and cluster == DGX1_CLUSTER_64
        direct = simulate(spec, anchor.config, cluster)
        [residual] = AnchorEvaluator([anchor]).evaluate(DEFAULT_CALIBRATION)
        assert residual.throughput_tflops == pytest.approx(
            direct.throughput_per_gpu / 1e12
        )
        assert residual.memory_gb == pytest.approx(direct.memory.total / GB)
        assert residual.throughput_ratio == pytest.approx(
            (direct.throughput_per_gpu / 1e12) / anchor.throughput_tflops
        )

    def test_objective_and_headline_metric(self):
        # Both metrics weight each anchor by the paper's own confidence
        # (PaperAnchor.weight: twice-published cells count double).
        residuals = AnchorEvaluator(CHEAP_ANCHORS).evaluate(DEFAULT_CALIBRATION)
        weights = FitWeights(throughput=1.0, memory=0.0)
        anchor_w = [r.anchor.weight for r in residuals]
        assert anchor_w != [1.0] * len(anchor_w)  # the repeats are encoded
        expected = sum(
            w * r.throughput_rel_err**2 for w, r in zip(anchor_w, residuals)
        ) / sum(anchor_w)
        assert objective_value(residuals, weights) == pytest.approx(expected)
        expected_mae = sum(
            w * abs(r.throughput_rel_err) for w, r in zip(anchor_w, residuals)
        ) / sum(anchor_w)
        assert weighted_throughput_error(residuals) == pytest.approx(expected_mae)
        uniform = [1.0] * len(residuals)
        assert weighted_throughput_error(residuals, uniform) == pytest.approx(
            sum(abs(r.throughput_rel_err) for r in residuals) / len(residuals)
        )

    def test_anchor_weights_reweight_the_headline_metric(self):
        residuals = AnchorEvaluator(CHEAP_ANCHORS[:2]).evaluate(
            DEFAULT_CALIBRATION
        )
        only_first = weighted_throughput_error(residuals, [1.0, 0.0])
        assert only_first == pytest.approx(abs(residuals[0].throughput_rel_err))
        with pytest.raises(ValueError, match="weights"):
            weighted_throughput_error(residuals, [1.0])
        with pytest.raises(ValueError, match="positive"):
            weighted_throughput_error(residuals, [0.0, 0.0])

    def test_empty_anchor_set_rejected(self):
        with pytest.raises(ValueError, match="at least one anchor"):
            AnchorEvaluator([])

    def test_weights_validated(self):
        with pytest.raises(ValueError):
            FitWeights(throughput=0.0)
        with pytest.raises(ValueError):
            FitWeights(memory=-1.0)


class TestFitter:
    def test_fit_strictly_improves_and_reports(self, cheap_fit):
        assert cheap_fit.improved
        assert cheap_fit.objective_after < cheap_fit.objective_before
        assert (
            cheap_fit.throughput_error_after < cheap_fit.throughput_error_before
        )
        assert len(cheap_fit.residuals_before) == len(CHEAP_ANCHORS)
        assert cheap_fit.n_evaluations > 0
        # Unfitted fields pass through untouched.
        assert (
            cheap_fit.fitted_calibration.width_half_point
            == DEFAULT_CALIBRATION.width_half_point
        )

    def test_fit_is_deterministic(self, cheap_fit):
        again = fit_calibration(
            CHEAP_ANCHORS, parameters=CHEAP_PARAMETERS, quick=True
        )
        assert again.fitted_calibration == cheap_fit.fitted_calibration
        assert again.n_evaluations == cheap_fit.n_evaluations
        assert again.trace == cheap_fit.trace

    def test_fitted_values_respect_bounds(self, cheap_fit):
        for p in CHEAP_PARAMETERS:
            value = getattr(cheap_fit.fitted_calibration, p.name)
            assert p.lower <= value <= p.upper

    def test_format_fit_result_renders(self, cheap_fit):
        text = format_fit_result(cheap_fit)
        assert "weighted mean relative throughput error" in text
        assert "kernel_efficiency_max" in text
        for anchor in CHEAP_ANCHORS:
            assert anchor.label in text

    def test_duplicate_parameters_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            fit_calibration(
                CHEAP_ANCHORS,
                parameters=(CHEAP_PARAMETERS[0], CHEAP_PARAMETERS[0]),
                quick=True,
            )

    def test_empty_parameters_rejected(self):
        with pytest.raises(ValueError, match="at least one parameter"):
            fit_calibration(CHEAP_ANCHORS, parameters=(), quick=True)

    def test_default_parameter_set_constructs_valid_calibrations(self):
        # Every corner of the default fit box must be a constructible
        # Calibration — the bound-handling contract with __post_init__.
        for p in FIT_PARAMETERS:
            for value in (p.lower, p.upper):
                Calibration(**{p.name: value})


class TestCalibrationValidation:
    @pytest.mark.parametrize("field", [
        "kernel_efficiency_max", "tokens_half_point", "width_half_point",
        "optimizer_bytes_per_param", "network_overhead_scale",
    ])
    @pytest.mark.parametrize("bad", [0.0, -1.0])
    def test_non_positive_constants_rejected_at_construction(self, field, bad):
        with pytest.raises(ValueError, match=field):
            Calibration(**{field: bad})

    def test_efficiency_above_peak_rejected(self):
        with pytest.raises(ValueError, match="kernel_efficiency_max"):
            Calibration(kernel_efficiency_max=1.5)

    def test_negative_step_overhead_rejected(self):
        with pytest.raises(ValueError, match="fixed_step_overhead"):
            Calibration(fixed_step_overhead=-1e-3)

    def test_zero_step_overhead_allowed(self):
        assert Calibration(fixed_step_overhead=0.0).fixed_step_overhead == 0.0

    def test_defaults_are_valid(self):
        Calibration()


NON_DEFAULT = Calibration(
    kernel_efficiency_max=0.71234,
    tokens_half_point=87.5,
    width_half_point=310.25,
    optimizer_bytes_per_param=48.125,
    fixed_step_overhead=7.8125e-3,
    network_overhead_scale=1.5,
)


class TestSerialization:
    def test_json_round_trip_is_exact(self):
        payload = canonical_dumps(calibration_to_json(NON_DEFAULT))
        import json

        restored = calibration_from_json(json.loads(payload))
        assert restored == NON_DEFAULT

    def test_save_load_file_round_trip(self, tmp_path):
        path = save_calibration(tmp_path / "cal.json", NON_DEFAULT)
        assert load_calibration(path) == NON_DEFAULT

    def test_load_accepts_bare_field_dict(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(canonical_dumps(calibration_to_json(NON_DEFAULT)))
        assert load_calibration(path) == NON_DEFAULT

    def test_load_fills_missing_fields_from_defaults(self, tmp_path):
        path = tmp_path / "partial.json"
        path.write_text('{"kernel_efficiency_max": 0.5}')
        calibration = load_calibration(path)
        assert calibration.kernel_efficiency_max == 0.5
        assert (
            calibration.tokens_half_point
            == DEFAULT_CALIBRATION.tokens_half_point
        )

    def test_load_rejects_unknown_fields_by_name(self, tmp_path):
        path = tmp_path / "typo.json"
        path.write_text('{"kernel_eficiency_max": 0.5}')
        with pytest.raises(ValueError, match="kernel_eficiency_max"):
            load_calibration(path)

    def test_load_rejects_wrong_format_version(self, tmp_path):
        path = tmp_path / "old.json"
        path.write_text(canonical_dumps({
            "format": 1, "calibration": calibration_to_json(NON_DEFAULT),
        }))
        with pytest.raises(ValueError, match="format"):
            load_calibration(path)

    def test_every_fitted_constant_changes_the_cell_key(self):
        """Checkpoint content hashes must fold in every calibration field,
        so a fitted calibration can never accidentally resume a cell
        computed under the hand-tuned one (or vice versa)."""
        from dataclasses import replace

        from repro.parallel.config import Method

        cell = SweepCell(Method.BREADTH_FIRST, 64)

        def key(calibration):
            return cell_key(MODEL_6_6B, DGX1_CLUSTER_64, calibration, cell)

        base_key = key(DEFAULT_CALIBRATION)
        seen = {base_key}
        for p in FIT_PARAMETERS:
            tweaked = replace(
                DEFAULT_CALIBRATION,
                **{p.name: getattr(DEFAULT_CALIBRATION, p.name) * 1.0009765625},
            )
            tweaked_key = key(tweaked)
            assert tweaked_key not in seen, f"{p.name} not hashed into cell keys"
            seen.add(tweaked_key)

    def test_fitted_calibration_hashes_identically_after_round_trip(
        self, tmp_path
    ):
        from repro.parallel.config import Method

        cell = SweepCell(Method.DEPTH_FIRST, 32)
        path = save_calibration(tmp_path / "fit.json", NON_DEFAULT)
        reloaded = load_calibration(path)
        assert cell_key(MODEL_6_6B, DGX1_CLUSTER_64, reloaded, cell) == cell_key(
            MODEL_6_6B, DGX1_CLUSTER_64, NON_DEFAULT, cell
        )


class TestCommittedFit:
    """The checked-in ``fitted_calibration.json`` and the per-anchor bands."""

    def test_committed_file_loads(self):
        calibration = load_calibration(FITTED_PATH)
        assert calibration != DEFAULT_CALIBRATION

    def test_committed_fit_beats_hand_tuned_on_anchors(self):
        evaluator = AnchorEvaluator()
        before = weighted_throughput_error(
            evaluator.evaluate(DEFAULT_CALIBRATION)
        )
        after = weighted_throughput_error(
            evaluator.evaluate(load_calibration(FITTED_PATH))
        )
        assert after < before

    @pytest.mark.parametrize(
        "name,calibration",
        [("hand-tuned", DEFAULT_CALIBRATION), ("fitted", None)],
    )
    def test_per_anchor_bands_hold(self, name, calibration):
        if calibration is None:
            calibration = load_calibration(FITTED_PATH)
        for residual in AnchorEvaluator().evaluate(calibration):
            anchor = residual.anchor
            low, high = anchor.throughput_band
            assert low <= residual.throughput_ratio <= high, (
                f"{name}: {anchor.label} throughput ratio "
                f"{residual.throughput_ratio:.3f} outside [{low}, {high}]"
            )
            low, high = anchor.memory_band
            assert low <= residual.memory_ratio <= high, (
                f"{name}: {anchor.label} memory ratio "
                f"{residual.memory_ratio:.3f} outside [{low}, {high}]"
            )


class TestNetworkOverheadFit:
    """The fitted NetworkSpec overhead scale and its Ethernet payoff."""

    def test_network_overhead_scale_is_fitted(self):
        assert "network_overhead_scale" in {p.name for p in FIT_PARAMETERS}
        fitted = load_calibration(FITTED_PATH)
        assert fitted.network_overhead_scale != 1.0

    def test_both_ethernet_anchors_tighten_under_fitted_scale(self):
        """The carried ROADMAP item: the overhead fit must make both
        Appendix E Ethernet rows strictly more accurate than the same
        fitted calibration with the scale stripped back to 1.0."""
        from dataclasses import replace

        fitted = load_calibration(FITTED_PATH)
        stripped = replace(fitted, network_overhead_scale=1.0)
        evaluator = AnchorEvaluator()
        with_scale = evaluator.evaluate(fitted)
        without = evaluator.evaluate(stripped)
        ethernet = [
            i for i, anchor in enumerate(PAPER_ANCHORS) if anchor.ethernet
        ]
        assert len(ethernet) == 2
        for i in ethernet:
            assert abs(with_scale[i].throughput_rel_err) < abs(
                without[i].throughput_rel_err
            ), (
                f"{PAPER_ANCHORS[i].label}: fitted overhead scale does not "
                "tighten this anchor"
            )

    def test_default_scale_is_omitted_from_json(self):
        """``network_overhead_scale`` is a post-format-2 field: at its
        default it must not be emitted, or every pre-existing checkpoint
        content hash (and the golden cell keys) would shift."""
        assert "network_overhead_scale" not in calibration_to_json(
            DEFAULT_CALIBRATION
        )
        from dataclasses import replace

        scaled = replace(DEFAULT_CALIBRATION, network_overhead_scale=1.25)
        assert calibration_to_json(scaled)["network_overhead_scale"] == 1.25
