"""Tests for GPU, network and cluster specifications."""

from __future__ import annotations

import pytest

from repro.hardware.cluster import (
    DGX1_CLUSTER_64,
    DGX1_CLUSTER_64_ETHERNET,
    ClusterSpec,
    ParallelDim,
    scaled_cluster,
)
from repro.hardware.gpu import A100, V100, GPUSpec
from repro.hardware.network import (
    ETHERNET_DGX1,
    INFINIBAND_DGX1,
    NVLINK_A100,
    NetworkSpec,
)


class TestGPUSpec:
    def test_v100_peak(self):
        assert V100.peak_flops == 125e12

    def test_v100_memory_is_32gb(self):
        assert V100.memory_bytes == 32 * 2**30

    def test_invalid_flops(self):
        with pytest.raises(ValueError, match="peak_flops"):
            GPUSpec("bad", -1, 1, 1)

    def test_invalid_memory(self):
        with pytest.raises(ValueError, match="memory_bytes"):
            GPUSpec("bad", 1, 0, 1)


class TestNetworkSpec:
    def test_transfer_time_has_latency_floor(self):
        assert INFINIBAND_DGX1.transfer_time(0) == INFINIBAND_DGX1.latency

    def test_non_overlapped_pays_sync(self):
        fast = INFINIBAND_DGX1.transfer_time(1e6, overlapped=True)
        slow = INFINIBAND_DGX1.transfer_time(1e6, overlapped=False)
        assert slow - fast == pytest.approx(INFINIBAND_DGX1.sync_overhead)

    def test_bandwidth_term(self):
        spec = NetworkSpec("t", bandwidth=1e9, latency=0.0)
        assert spec.transfer_time(1e9) == pytest.approx(1.0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError, match="n_bytes"):
            INFINIBAND_DGX1.transfer_time(-1)

    def test_ethernet_slower_than_infiniband(self):
        assert ETHERNET_DGX1.bandwidth < INFINIBAND_DGX1.bandwidth

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError, match="bandwidth"):
            NetworkSpec("bad", bandwidth=0, latency=0)


class TestClusterSpec:
    def test_paper_cluster_is_64_v100(self):
        assert DGX1_CLUSTER_64.n_gpus == 64
        assert DGX1_CLUSTER_64.gpu is V100

    def test_tp_within_node_uses_nvlink(self):
        net = DGX1_CLUSTER_64.network_for(ParallelDim.TENSOR, 1, 8, 8)
        assert net is DGX1_CLUSTER_64.intra_node

    def test_dp_across_nodes_uses_interconnect(self):
        net = DGX1_CLUSTER_64.network_for(ParallelDim.DATA, 8, 1, 8)
        assert net is DGX1_CLUSTER_64.inter_node

    def test_small_pipeline_stays_on_node(self):
        # N_TP=2, N_PP=4 -> pipeline group spans 8 consecutive GPUs.
        net = DGX1_CLUSTER_64.network_for(ParallelDim.PIPELINE, 8, 4, 2)
        assert net is DGX1_CLUSTER_64.intra_node

    def test_large_pipeline_crosses_nodes(self):
        net = DGX1_CLUSTER_64.network_for(ParallelDim.PIPELINE, 1, 8, 8)
        assert net is DGX1_CLUSTER_64.inter_node

    def test_oversized_grid_rejected(self):
        with pytest.raises(ValueError, match="exceeds cluster"):
            DGX1_CLUSTER_64.network_for(ParallelDim.DATA, 64, 8, 8)

    def test_hardware_intensity_matches_paper_a100(self):
        # Appendix A.3: A100 + InfiniBand -> ~6700 flop/byte at 46.6 GB/s;
        # the exact paper value 6240 uses 46.6GB/s (2x 23.3); with our DGX-1
        # IB (25 GB/s) the V100 intensity is 5000.
        cluster = DGX1_CLUSTER_64
        assert cluster.hardware_intensity(cluster.inter_node) == pytest.approx(5000.0)

    def test_nvlink_intensity_below_paper_tp_threshold(self):
        # TP must be feasible on NVLink: intensity comfortably below
        # the 2*S_hidden/N_TP ~ 2048 of a 52B model at N_TP=8.
        cluster = DGX1_CLUSTER_64
        assert cluster.hardware_intensity(cluster.intra_node) < 2048

    def test_scaled_cluster_rounds_up_nodes(self):
        big = scaled_cluster(DGX1_CLUSTER_64, 4096)
        assert big.n_gpus == 4096
        assert big.node_size == 8

    def test_scaled_cluster_invalid(self):
        with pytest.raises(ValueError, match="n_gpus"):
            scaled_cluster(DGX1_CLUSTER_64, 0)

    def test_ethernet_variant_differs_only_in_fabric(self):
        assert DGX1_CLUSTER_64_ETHERNET.inter_node is ETHERNET_DGX1
        assert DGX1_CLUSTER_64_ETHERNET.n_gpus == DGX1_CLUSTER_64.n_gpus

    def test_invalid_node_size(self):
        with pytest.raises(ValueError, match="node_size"):
            ClusterSpec("bad", V100, 0, 1, NVLINK_A100, INFINIBAND_DGX1)
