"""Tests for the hybrid depth/breadth schedule (Section 4.2 conjecture)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ops import OpKind
from repro.core.schedules.base import build_schedule
from repro.core.schedules.hybrid import build_hybrid_schedule, hybrid_order
from repro.core.validation import validate_schedule
from repro.parallel.config import ScheduleKind
from repro.runtime.executor import PipelineTrainer
from repro.runtime.model import ModelConfig
from repro.runtime.reference import ReferenceTrainer


class TestStructure:
    def test_sequence_npp_equals_depth_first(self):
        hybrid = build_hybrid_schedule(4, 8, 2, sequence_size=4)
        depth = build_schedule(ScheduleKind.DEPTH_FIRST, 4, 8, 2)
        assert hybrid.device_orders == depth.device_orders

    def test_single_sequence_is_forward_phase_first(self):
        s = build_hybrid_schedule(2, 4, 2, sequence_size=4)
        kinds = [op.kind for op in s.ops_of(0)]
        n_fwd = 4 * 2
        assert all(k is OpKind.FORWARD for k in kinds[:n_fwd])

    def test_validates_for_intermediate_sequences(self):
        for seq in (4, 8, 16):
            s = build_hybrid_schedule(4, 16, 2, sequence_size=seq)
            analysis = validate_schedule(s)
            assert analysis.makespan > 0

    def test_sequence_below_npp_rejected(self):
        with pytest.raises(ValueError, match="sequence_size"):
            hybrid_order(0, 4, 8, 2, sequence_size=2)

    def test_nmb_multiple_required(self):
        with pytest.raises(ValueError, match="multiple"):
            hybrid_order(0, 2, 6, 2, sequence_size=4)

    def test_nmb_multiple_required_via_builder(self):
        # The documented "N_mb must be a multiple of sequence_size"
        # contract is enforced on the public builder too, not just the
        # per-rank order.
        with pytest.raises(ValueError, match="multiple"):
            build_hybrid_schedule(2, 6, 2, sequence_size=4)

    def test_sequence_exceeding_nmb_rejected(self):
        with pytest.raises(ValueError, match="multiple"):
            hybrid_order(0, 2, 4, 2, sequence_size=8)

    def test_empty_batch_rejected(self):
        # Regression: n_microbatches=0 used to return a silently empty
        # order instead of raising.
        with pytest.raises(ValueError, match="n_microbatches"):
            hybrid_order(0, 2, 0, 2, sequence_size=2)

    def test_zero_loop_rejected(self):
        # Regression: n_loop=0 used to return a silently empty order.
        with pytest.raises(ValueError, match="n_loop"):
            hybrid_order(0, 2, 4, 0, sequence_size=2)

    def test_rank_range(self):
        with pytest.raises(ValueError, match="out of range"):
            hybrid_order(4, 4, 8, 2, sequence_size=4)


class TestMemoryInterpolation:
    def test_in_flight_grows_with_sequence_size(self):
        """The hybrid trades activation memory for slack: in-flight
        activations interpolate between depth-first and breadth-first."""
        n_pp, n_mb, n_loop = 4, 16, 2
        depth = build_schedule(ScheduleKind.DEPTH_FIRST, n_pp, n_mb, n_loop)
        breadth = build_schedule(ScheduleKind.BREADTH_FIRST, n_pp, n_mb, n_loop)
        peaks = [
            build_hybrid_schedule(n_pp, n_mb, n_loop, seq).peak_in_flight()
            for seq in (4, 8, 16)
        ]
        assert peaks[0] == depth.peak_in_flight()
        assert peaks == sorted(peaks)
        assert peaks[-1] <= breadth.peak_in_flight() + n_pp

    def test_same_bubble_as_depth_first(self):
        a = validate_schedule(build_hybrid_schedule(4, 16, 2, 8))
        b = validate_schedule(build_schedule(ScheduleKind.DEPTH_FIRST, 4, 16, 2))
        assert a.makespan == pytest.approx(b.makespan)


class TestRuntimeEquivalence:
    def test_hybrid_trains_identically_to_serial(self):
        config = ModelConfig(vocab=32, hidden=16, n_heads=2, n_layers=4, seq=6)
        tokens, targets = ReferenceTrainer.make_batch(config, batch=8)
        reference = ReferenceTrainer(config)
        ref_loss = reference.step(tokens, targets)

        schedule = build_hybrid_schedule(2, 8, 2, sequence_size=4)
        trainer = PipelineTrainer(config, schedule)
        result = trainer.step(tokens, targets)
        assert result.loss == pytest.approx(ref_loss, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    n_pp=st.integers(2, 4),
    n_loop=st.integers(1, 3),
    seq_mult=st.integers(1, 3),
    groups=st.integers(1, 3),
)
def test_hybrid_always_valid_property(n_pp, n_loop, seq_mult, groups):
    seq = n_pp * seq_mult
    n_mb = seq * groups
    schedule = build_hybrid_schedule(n_pp, n_mb, n_loop, seq)
    analysis = validate_schedule(schedule)
    assert schedule.total_ops == 2 * n_mb * n_pp * n_loop
    assert analysis.makespan > 0
