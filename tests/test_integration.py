"""Cross-module integration tests: the pieces must agree with each other."""

from __future__ import annotations

import pytest

from repro.analytical.bubble import bubble_fraction
from repro.core.schedules.base import build_schedule
from repro.core.validation import validate_schedule
from repro.experiments.runner import EXPERIMENTS, main
from repro.hardware.cluster import DGX1_CLUSTER_64
from repro.models.presets import MODEL_6_6B, MODEL_52B
from repro.parallel.config import Method, ParallelConfig, ScheduleKind
from repro.runtime.executor import PipelineTrainer
from repro.runtime.model import ModelConfig
from repro.runtime.optimizer import AdamConfig
from repro.runtime.reference import ReferenceTrainer
from repro.search.grid import best_configuration
from repro.sim.simulator import simulate


class TestSimulatorVsAnalytics:
    @pytest.mark.parametrize("kind,n_loop", [
        (ScheduleKind.BREADTH_FIRST, 4),
        (ScheduleKind.GPIPE, 1),
    ])
    def test_step_time_respects_bubble_lower_bound(self, kind, n_loop):
        """Simulated step >= pure-compute time inflated by Eq. (4)/(9)."""
        config = ParallelConfig(
            n_dp=1, n_pp=8, n_tp=8, microbatch_size=1, n_microbatches=16,
            n_loop=n_loop, schedule=kind,
        )
        result = simulate(MODEL_52B, config, DGX1_CLUSTER_64)
        bubble = bubble_fraction(8, 16, n_loop)
        # compute_busy is per-rank busy time; the bubble stretches it.
        lower_bound = result.compute_busy * (1 + bubble) * 0.99
        assert result.step_time >= lower_bound

    def test_sim_memory_matches_direct_model(self):
        from repro.analytical.memory import memory_model
        from repro.implementations import OUR_IMPLEMENTATION

        config = ParallelConfig(
            n_dp=2, n_pp=4, n_tp=8, microbatch_size=1, n_microbatches=8,
            n_loop=4, schedule=ScheduleKind.BREADTH_FIRST,
        )
        result = simulate(MODEL_52B, config, DGX1_CLUSTER_64)
        direct = memory_model(MODEL_52B, config, OUR_IMPLEMENTATION)
        assert result.memory.total == pytest.approx(direct.total)


class TestSearchIntegrity:
    def test_winning_config_schedule_is_valid(self):
        outcome = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, Method.BREADTH_FIRST, 64
        )
        best = outcome.best
        assert best is not None
        schedule = build_schedule(
            best.config.schedule, best.config.n_pp,
            best.config.n_microbatches, best.config.n_loop,
        )
        analysis = validate_schedule(schedule)
        assert analysis.makespan > 0

    def test_search_winner_beats_fixed_config(self):
        """The search must never return something worse than a known
        feasible configuration."""
        fixed = ParallelConfig(
            n_dp=1, n_pp=8, n_tp=8, microbatch_size=1, n_microbatches=64,
            n_loop=4, schedule=ScheduleKind.BREADTH_FIRST,
        )
        fixed_result = simulate(MODEL_52B, fixed, DGX1_CLUSTER_64)
        outcome = best_configuration(
            MODEL_52B, DGX1_CLUSTER_64, Method.BREADTH_FIRST, 64
        )
        assert outcome.best is not None
        assert (
            outcome.best.throughput_per_gpu
            >= fixed_result.throughput_per_gpu * 0.999
        )


class TestRuntimeWithCustomOptimizer:
    def test_float32_master_close_to_float64(self):
        config = ModelConfig(vocab=32, hidden=16, n_heads=2, n_layers=2, seq=4)
        tokens, targets = ReferenceTrainer.make_batch(config, batch=4)
        schedule = build_schedule(ScheduleKind.BREADTH_FIRST, 2, 2, 1)
        hi = PipelineTrainer(
            config, schedule, adam=AdamConfig(master_dtype="float64")
        )
        lo = PipelineTrainer(
            config, schedule, adam=AdamConfig(master_dtype="float32")
        )
        for _ in range(3):
            loss_hi = hi.step(tokens, targets).loss
            loss_lo = lo.step(tokens, targets).loss
        assert loss_lo == pytest.approx(loss_hi, rel=1e-4)


class TestRunnerCli:
    def test_experiment_registry_covers_paper(self):
        names = set(EXPERIMENTS)
        for required in ("fig1", "fig2", "fig3", "fig4", "fig5", "fig6",
                         "fig7", "fig8", "fig9", "table4.1", "table5.1",
                         "tableE"):
            assert required in names

    def test_cli_runs_fast_experiments(self, capsys):
        assert main(["fig3", "table5.1"]) == 0
        out = capsys.readouterr().out
        assert "GPU 0" in out
        assert "8192" in out

    def test_cli_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["not-an-experiment"])

    def test_cli_default_selects_all(self, capsys):
        # Regression: `repro-experiments` with no arguments must expand to
        # every *paper* experiment (argparse nargs="*" + choices rejects a
        # list default, so the default goes through post-processing
        # instead).  Extensions like "hybrid" stay opt-in by name.
        import repro.experiments.runner as runner

        recorded = []
        originals = dict(runner.EXPERIMENTS)
        try:
            for name in runner.EXPERIMENTS:
                runner.EXPERIMENTS[name] = (
                    lambda full, jobs=None, _n=name: recorded.append(_n)
                )
            assert runner.main([]) == 0
        finally:
            runner.EXPERIMENTS.update(originals)
        assert recorded == list(runner.PAPER_EXPERIMENTS)
        assert "hybrid" in runner.EXPERIMENTS
        assert "hybrid" not in runner.PAPER_EXPERIMENTS
        capsys.readouterr()
