"""Tests for the analytical step-time lower bound (branch-and-bound).

The bound's one non-negotiable property: it never exceeds the simulated
step time.  If it did, the search could prune a candidate that would
have won, silently corrupting every Figure 7 / Appendix E result.  The
property test hammers exactly that over a randomized sample of the real
configuration spaces (hybrid axis included); the exactness test pins the
bound's arithmetic on a case small enough to compute by hand.
"""

from __future__ import annotations

from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytical.lower_bound import (
    FLOAT_MARGIN,
    step_time_lower_bound,
)
from repro.hardware.cluster import DGX1_CLUSTER_64, DGX1_CLUSTER_64_ETHERNET
from repro.models.presets import MODEL_6_6B, MODEL_52B
from repro.parallel.config import Method, ParallelConfig, ScheduleKind
from repro.search.space import configuration_space
from repro.sim.calibration import DEFAULT_CALIBRATION
from repro.sim.cost import CostModel
from repro.sim.simulator import simulate

_CLUSTERS = {
    "infiniband": DGX1_CLUSTER_64,
    "ethernet": DGX1_CLUSTER_64_ETHERNET,
}
_SPECS = {"52B": MODEL_52B, "6.6B": MODEL_6_6B}


@lru_cache(maxsize=None)
def _space(spec_name: str, cluster_name: str, method: Method, batch: int):
    """Materialized candidate list for one cell (hybrid axis on)."""
    return tuple(
        configuration_space(
            method,
            _SPECS[spec_name],
            _CLUSTERS[cluster_name],
            batch,
            include_hybrid=True,
        )
    )


def _cost_for(spec, cluster, config, impl) -> CostModel:
    return CostModel(
        spec=spec,
        config=config,
        cluster=cluster,
        implementation=impl,
        calibration=DEFAULT_CALIBRATION,
    )


class TestBoundNeverExceedsSimulation:
    @settings(max_examples=120, deadline=None)
    @given(
        spec_name=st.sampled_from(sorted(_SPECS)),
        cluster_name=st.sampled_from(sorted(_CLUSTERS)),
        method=st.sampled_from(list(Method)),
        batch=st.sampled_from([8, 32, 64, 96]),
        pick=st.integers(min_value=0, max_value=10**9),
    )
    def test_lower_bound_below_step_time(
        self, spec_name, cluster_name, method, batch, pick
    ):
        """Property: bound <= simulate(...).step_time across the space.

        Samples uniformly from the actual enumerated candidates —
        including hybrid-schedule ones — so the property covers exactly
        what the branch-and-bound stage can ever see.
        """
        space = _space(spec_name, cluster_name, method, batch)
        if not space:
            return
        config, impl = space[pick % len(space)]
        spec, cluster = _SPECS[spec_name], _CLUSTERS[cluster_name]
        cost = _cost_for(spec, cluster, config, impl)
        bound = step_time_lower_bound(cost)
        result = simulate(
            spec, config, cluster, implementation=impl, cost=cost
        )
        assert bound.step_time <= result.step_time, (
            f"bound {bound.step_time} exceeds simulated "
            f"{result.step_time} for {config.describe()}"
        )
        assert bound.step_time > 0

    def test_bound_covers_hybrid_schedules(self):
        space = _space("6.6B", "ethernet", Method.BREADTH_FIRST, 32)
        hybrids = [
            (c, i) for c, i in space if c.schedule is ScheduleKind.HYBRID
        ]
        assert hybrids, "hybrid axis missing from the sampled space"
        for config, impl in hybrids[:10]:
            cost = _cost_for(
                MODEL_6_6B, DGX1_CLUSTER_64_ETHERNET, config, impl
            )
            bound = step_time_lower_bound(cost)
            result = simulate(
                MODEL_6_6B,
                config,
                DGX1_CLUSTER_64_ETHERNET,
                implementation=impl,
                cost=cost,
            )
            assert bound.step_time <= result.step_time


class TestExactness:
    def test_single_device_single_microbatch_is_tight(self):
        """Hand-computable case: one GPU, one micro-batch, no pipeline.

        The engine runs exactly three serial instructions — forward,
        backward, optimizer — so its makespan is their sum and the
        bound's compute certificate equals it (up to the deliberate
        float margin).
        """
        from repro.implementations import OUR_IMPLEMENTATION

        config = ParallelConfig(
            n_dp=1, n_pp=1, n_tp=1, microbatch_size=1, n_microbatches=1,
            schedule=ScheduleKind.BREADTH_FIRST,
        )
        cost = CostModel(
            spec=MODEL_6_6B, config=config, cluster=DGX1_CLUSTER_64,
            implementation=OUR_IMPLEMENTATION, calibration=DEFAULT_CALIBRATION,
        )
        expected_makespan = (
            cost.forward_time(0) + cost.backward_time(0)
            + cost.optimizer_time(0)
        )
        bound = step_time_lower_bound(cost)
        assert bound.compute_seconds == pytest.approx(
            expected_makespan, rel=1e-12
        )
        assert bound.step_time == pytest.approx(
            expected_makespan + DEFAULT_CALIBRATION.fixed_step_overhead,
            rel=1e-9,
        )

        result = simulate(
            MODEL_6_6B, config, DGX1_CLUSTER_64, cost=cost,
            implementation=cost.implementation,
        )
        assert bound.step_time <= result.step_time
        # Tight to within the float margin: nothing in this program can
        # overlap, so the bound *is* the step time.
        assert bound.step_time >= result.step_time * (1 - 10 * FLOAT_MARGIN)

    def test_fill_certificate_counted_for_pipelines(self):
        """With N_PP = 2 the last rank waits for stage 0's first forward
        plus one transfer — the bound must include that fill."""
        config = ParallelConfig(
            n_dp=1, n_pp=2, n_tp=1, microbatch_size=1, n_microbatches=4,
            n_loop=2, schedule=ScheduleKind.BREADTH_FIRST,
        )
        from repro.implementations import OUR_IMPLEMENTATION

        cost = CostModel(
            spec=MODEL_6_6B, config=config, cluster=DGX1_CLUSTER_64,
            implementation=OUR_IMPLEMENTATION, calibration=DEFAULT_CALIBRATION,
        )
        times = cost.stage_times()
        fill = times.forward[0] + times.pp_launch + times.pp_transfer
        assert cost.rank_fill_seconds(1) == pytest.approx(fill, rel=1e-12)
        rank1_floor = fill + cost.rank_compute_seconds(1)
        bound = step_time_lower_bound(cost)
        assert bound.compute_seconds >= rank1_floor * (1 - 1e-12)

    def test_margin_only_loosens(self):
        config = ParallelConfig(
            n_dp=1, n_pp=1, n_tp=1, microbatch_size=1, n_microbatches=2,
            schedule=ScheduleKind.BREADTH_FIRST,
        )
        from repro.implementations import OUR_IMPLEMENTATION

        cost = CostModel(
            spec=MODEL_6_6B, config=config, cluster=DGX1_CLUSTER_64,
            implementation=OUR_IMPLEMENTATION, calibration=DEFAULT_CALIBRATION,
        )
        bound = step_time_lower_bound(cost)
        assert bound.makespan < bound.compute_seconds
