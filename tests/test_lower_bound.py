"""Tests for the analytical step-time lower bound (branch-and-bound).

The bound's one non-negotiable property: it never exceeds the simulated
step time.  If it did, the search could prune a candidate that would
have won, silently corrupting every Figure 7 / Appendix E result.  The
property test hammers exactly that over a randomized sample of the real
configuration spaces (hybrid axis included); the exactness test pins the
bound's arithmetic on a case small enough to compute by hand.
"""

from __future__ import annotations

from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytical.lower_bound import (
    FLOAT_MARGIN,
    step_time_lower_bound,
)
from repro.hardware.cluster import DGX1_CLUSTER_64, DGX1_CLUSTER_64_ETHERNET
from repro.models.presets import MODEL_6_6B, MODEL_52B
from repro.parallel.config import Method, ParallelConfig, ScheduleKind
from repro.search.space import configuration_space
from repro.sim.calibration import DEFAULT_CALIBRATION
from repro.sim.cost import CostModel
from repro.sim.simulator import simulate

_CLUSTERS = {
    "infiniband": DGX1_CLUSTER_64,
    "ethernet": DGX1_CLUSTER_64_ETHERNET,
}
_SPECS = {"52B": MODEL_52B, "6.6B": MODEL_6_6B}


@lru_cache(maxsize=None)
def _space(spec_name: str, cluster_name: str, method: Method, batch: int):
    """Materialized candidate list for one cell (hybrid axis on)."""
    return tuple(
        configuration_space(
            method,
            _SPECS[spec_name],
            _CLUSTERS[cluster_name],
            batch,
            include_hybrid=True,
        )
    )


def _cost_for(spec, cluster, config, impl) -> CostModel:
    return CostModel(
        spec=spec,
        config=config,
        cluster=cluster,
        implementation=impl,
        calibration=DEFAULT_CALIBRATION,
    )


class TestBoundNeverExceedsSimulation:
    @settings(max_examples=120, deadline=None)
    @given(
        spec_name=st.sampled_from(sorted(_SPECS)),
        cluster_name=st.sampled_from(sorted(_CLUSTERS)),
        method=st.sampled_from(list(Method)),
        batch=st.sampled_from([8, 32, 64, 96]),
        pick=st.integers(min_value=0, max_value=10**9),
    )
    def test_lower_bound_below_step_time(
        self, spec_name, cluster_name, method, batch, pick
    ):
        """Property: bound <= simulate(...).step_time across the space.

        Samples uniformly from the actual enumerated candidates —
        including hybrid-schedule ones — so the property covers exactly
        what the branch-and-bound stage can ever see.
        """
        space = _space(spec_name, cluster_name, method, batch)
        if not space:
            return
        config, impl = space[pick % len(space)]
        spec, cluster = _SPECS[spec_name], _CLUSTERS[cluster_name]
        cost = _cost_for(spec, cluster, config, impl)
        bound = step_time_lower_bound(cost)
        result = simulate(
            spec, config, cluster, implementation=impl, cost=cost
        )
        assert bound.step_time <= result.step_time, (
            f"bound {bound.step_time} exceeds simulated "
            f"{result.step_time} for {config.describe()}"
        )
        assert bound.step_time > 0

    def test_bound_covers_hybrid_schedules(self):
        space = _space("6.6B", "ethernet", Method.BREADTH_FIRST, 32)
        hybrids = [
            (c, i) for c, i in space if c.schedule is ScheduleKind.HYBRID
        ]
        assert hybrids, "hybrid axis missing from the sampled space"
        for config, impl in hybrids[:10]:
            cost = _cost_for(
                MODEL_6_6B, DGX1_CLUSTER_64_ETHERNET, config, impl
            )
            bound = step_time_lower_bound(cost)
            result = simulate(
                MODEL_6_6B,
                config,
                DGX1_CLUSTER_64_ETHERNET,
                implementation=impl,
                cost=cost,
            )
            assert bound.step_time <= result.step_time


class TestExactness:
    def test_single_device_single_microbatch_is_tight(self):
        """Hand-computable case: one GPU, one micro-batch, no pipeline.

        The engine runs exactly three serial instructions — forward,
        backward, optimizer — so its makespan is their sum and the
        bound's compute certificate equals it (up to the deliberate
        float margin).
        """
        from repro.implementations import OUR_IMPLEMENTATION

        config = ParallelConfig(
            n_dp=1, n_pp=1, n_tp=1, microbatch_size=1, n_microbatches=1,
            schedule=ScheduleKind.BREADTH_FIRST,
        )
        cost = CostModel(
            spec=MODEL_6_6B, config=config, cluster=DGX1_CLUSTER_64,
            implementation=OUR_IMPLEMENTATION, calibration=DEFAULT_CALIBRATION,
        )
        expected_makespan = (
            cost.forward_time(0) + cost.backward_time(0)
            + cost.optimizer_time(0)
        )
        bound = step_time_lower_bound(cost)
        assert bound.compute_seconds == pytest.approx(
            expected_makespan, rel=1e-12
        )
        assert bound.step_time == pytest.approx(
            expected_makespan + DEFAULT_CALIBRATION.fixed_step_overhead,
            rel=1e-9,
        )

        result = simulate(
            MODEL_6_6B, config, DGX1_CLUSTER_64, cost=cost,
            implementation=cost.implementation,
        )
        assert bound.step_time <= result.step_time
        # Tight to within the float margin: nothing in this program can
        # overlap, so the bound *is* the step time.
        assert bound.step_time >= result.step_time * (1 - 10 * FLOAT_MARGIN)

    def test_fill_certificate_counted_for_pipelines(self):
        """With N_PP = 2 the last rank waits for stage 0's first forward
        plus one transfer — the bound must include that fill."""
        config = ParallelConfig(
            n_dp=1, n_pp=2, n_tp=1, microbatch_size=1, n_microbatches=4,
            n_loop=2, schedule=ScheduleKind.BREADTH_FIRST,
        )
        from repro.implementations import OUR_IMPLEMENTATION

        cost = CostModel(
            spec=MODEL_6_6B, config=config, cluster=DGX1_CLUSTER_64,
            implementation=OUR_IMPLEMENTATION, calibration=DEFAULT_CALIBRATION,
        )
        times = cost.stage_times()
        fill = times.forward[0] + times.pp_launch + times.pp_transfer
        assert cost.rank_fill_seconds(1) == pytest.approx(fill, rel=1e-12)
        rank1_floor = fill + cost.rank_compute_seconds(1)
        bound = step_time_lower_bound(cost)
        assert bound.compute_seconds >= rank1_floor * (1 - 1e-12)

    def test_margin_only_loosens(self):
        config = ParallelConfig(
            n_dp=1, n_pp=1, n_tp=1, microbatch_size=1, n_microbatches=2,
            schedule=ScheduleKind.BREADTH_FIRST,
        )
        from repro.implementations import OUR_IMPLEMENTATION

        cost = CostModel(
            spec=MODEL_6_6B, config=config, cluster=DGX1_CLUSTER_64,
            implementation=OUR_IMPLEMENTATION, calibration=DEFAULT_CALIBRATION,
        )
        bound = step_time_lower_bound(cost)
        assert bound.makespan < bound.compute_seconds


class TestPartialsParity:
    """The family-cached fast path must be *bit-equal* to scalar assembly.

    ``step_time_lower_bound`` consumes
    :func:`repro.sim.cost_batch.bound_partials` /
    :func:`repro.sim.cost_batch.comm_rank_sums`; this reference
    re-assembles every certificate from per-candidate ``cost.rank_*``
    method calls in the documented float order.  Any drift here would
    silently change which candidates the search prunes.
    """

    @staticmethod
    def _reference_bound(cost):
        from repro.core.schedules.base import dpfs_group_count
        from repro.parallel.config import Sharding

        config = cost.config
        impl = cost.implementation
        times = cost.stage_times()
        comm = cost.comm_times() if config.n_dp > 1 else None
        n_mb = config.n_microbatches
        last_stage = config.n_stages - 1
        compute_bound = dp_bound = pp_bound = drain_bound = 0.0
        dp_overlap_active = config.n_dp > 1 and impl.dp_overlap
        if dp_overlap_active:
            n_groups = dpfs_group_count(
                config.schedule, n_mb, config.n_pp, config.sequence_size
            )
        for rank in range(config.n_pp):
            compute_bound = max(
                compute_bound,
                cost.rank_fill_seconds(rank) + cost.rank_compute_seconds(rank),
            )
            middle = n_mb * (times.forward[rank] + times.backward[rank])
            if impl.pp_overlap:
                if rank < last_stage:
                    middle += n_mb * times.pp_launch
                if rank > 0:
                    middle += n_mb * times.pp_launch
            else:
                if rank < last_stage:
                    middle += n_mb * times.pp_transfer
                if rank > 0:
                    middle += (n_mb - 1) * times.pp_transfer
            drain_bound = max(
                drain_bound,
                cost.rank_fill_seconds(rank)
                + middle
                + cost.rank_drain_seconds(rank),
            )
            if dp_overlap_active:
                stages = cost.placement.stages_of_device(rank)
                busy = 0.0
                if config.sharding is Sharding.FULL:
                    busy += 2.0 * n_groups * sum(
                        comm.gather[s] for s in stages
                    )
                    busy += n_groups * sum(comm.reduce[s] for s in stages)
                else:
                    busy += sum(comm.reduce[s] for s in stages)
                dp_bound = max(dp_bound, busy + comm.post_gather[rank])
            if impl.pp_overlap:
                pp_bound = max(
                    pp_bound, cost.rank_send_count(rank) * times.pp_transfer
                )
        tail = cost.optimizer_time(0)
        if config.n_dp > 1 and not impl.dp_overlap:
            tail += comm.dp_serial[0]
        if dp_overlap_active and config.sharding is Sharding.PARTIAL:
            tail += comm.post_gather[0]
        drain_bound += tail
        makespan = max(compute_bound, dp_bound, pp_bound, drain_bound) * (
            1.0 - FLOAT_MARGIN
        )
        return (
            compute_bound,
            dp_bound,
            pp_bound,
            drain_bound,
            makespan,
            makespan + cost.calibration.fixed_step_overhead,
        )

    @pytest.mark.parametrize("method", list(Method), ids=lambda m: m.name)
    def test_bit_equal_to_scalar_assembly(self, method):
        space = _space("6.6B", "infiniband", method, 64)
        for config, impl in space:
            cost = _cost_for(MODEL_6_6B, DGX1_CLUSTER_64, config, impl)
            bound = step_time_lower_bound(cost)
            assert (
                bound.compute_seconds,
                bound.dp_seconds,
                bound.pp_seconds,
                bound.drain_seconds,
                bound.makespan,
                bound.step_time,
            ) == self._reference_bound(cost), config.describe()


class TestDrainCertificate:
    """The drain-side (backward) fill certificate.

    Admissibility rides on the same property as every other certificate
    (``TestBoundNeverExceedsSimulation`` samples it through the same
    ``step_time_lower_bound``); these tests pin the arithmetic and the
    *point* — that drain is what closes the gap in the previously
    loosest regimes (non-overlapping 1F1B/GPipe pipelines, whose
    tightness sat near 0.3x before it).
    """

    def _cost(self, schedule, impl, n_pp=4, n_mb=8, n_loop=1):
        config = ParallelConfig(
            n_dp=1, n_pp=n_pp, n_tp=1, microbatch_size=1,
            n_microbatches=n_mb, n_loop=n_loop, schedule=schedule,
        )
        return CostModel(
            spec=MODEL_6_6B, config=config, cluster=DGX1_CLUSTER_64,
            implementation=impl, calibration=DEFAULT_CALIBRATION,
        )

    def test_rank0_has_no_drain(self):
        from repro.implementations import MEGATRON_LM

        cost = self._cost(ScheduleKind.ONE_F_ONE_B, MEGATRON_LM)
        assert cost.rank_drain_seconds(0) == 0.0

    def test_drain_formula_by_hand(self):
        """Last rank of a 4-deep non-overlapping pipeline: after its own
        last backward, the gradient chain B(3)->B(2)->B(1)->B(0) still
        has to run — one backward per lower stage plus one transfer per
        hop (no launch padding: Megatron-LM's profile doesn't overlap
        sends, so transfers occupy the compute stream via the middle
        term and only the per-hop latency is left to the drain)."""
        from repro.implementations import MEGATRON_LM

        cost = self._cost(ScheduleKind.ONE_F_ONE_B, MEGATRON_LM)
        times = cost.stage_times()
        expected = (
            times.backward[2] + times.backward[1] + times.backward[0]
            + 3 * times.pp_transfer
        )
        assert cost.rank_drain_seconds(3) == pytest.approx(expected, rel=1e-12)

    def test_drain_includes_launch_when_overlapping(self):
        from repro.implementations import OUR_IMPLEMENTATION

        cost = self._cost(
            ScheduleKind.BREADTH_FIRST, OUR_IMPLEMENTATION, n_loop=2
        )
        times = cost.stage_times()
        expected = (
            sum(times.backward[s] + times.pp_launch for s in range(1, 3))
            + times.backward[0] + 3 * times.pp_transfer
        )
        assert cost.rank_drain_seconds(3) == pytest.approx(expected, rel=1e-12)

    def test_drain_binds_and_tightens_one_f_one_b(self):
        """On a deep 1F1B pipeline the drain certificate is the binding
        one, and it brings the bound within a few percent of the
        simulated step time — the regime that sat near 0.3x tightness
        when fill+compute was all the pipeline certificate knew."""
        from repro.implementations import MEGATRON_LM

        cost = self._cost(ScheduleKind.ONE_F_ONE_B, MEGATRON_LM, n_mb=16)
        bound = step_time_lower_bound(cost)
        assert bound.drain_seconds == max(
            bound.compute_seconds,
            bound.dp_seconds,
            bound.pp_seconds,
            bound.drain_seconds,
        )
        result = simulate(
            MODEL_6_6B, cost.config, DGX1_CLUSTER_64,
            implementation=cost.implementation, cost=cost,
        )
        assert bound.step_time <= result.step_time
        assert bound.step_time >= 0.95 * result.step_time
