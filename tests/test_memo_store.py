"""MemoStore: manifest index over the checkpoint directory.

The manifest is a cache of the directory, never the other way around —
every test here stresses one leg of that contract: appends index new
checkpoints, drift (torn lines, missing manifests, deleted payloads)
heals at construction, back-filled directories written by a plain
``CheckpointStore`` become queryable, and checkpoint payload bytes are
exactly what the base class writes (the resume/golden-key guarantee).
"""

from __future__ import annotations

import json

import pytest

from repro.hardware.cluster import DGX1_CLUSTER_64
from repro.models.presets import PRESETS
from repro.parallel.config import Method
from repro.search.cell import DEFAULT_SETTINGS
from repro.search.grid import best_configuration
from repro.search.service.checkpoint import CheckpointStore
from repro.search.service.memo import MANIFEST_NAME, ManifestEntry, MemoStore
from repro.sim.calibration import DEFAULT_CALIBRATION

GROUP = "a" * 20


@pytest.fixture(scope="module")
def outcomes():
    """Fast real outcomes (No-pipeline prices in ~1ms per cell)."""
    spec = PRESETS["6.6B"]
    return {
        batch: best_configuration(
            spec,
            DGX1_CLUSTER_64,
            Method.NO_PIPELINE,
            batch,
            DEFAULT_CALIBRATION,
            DEFAULT_SETTINGS,
        )
        for batch in (8, 16, 32, 64)
    }


def _fill(store, outcomes, batches, *, group=GROUP):
    keys = {}
    for batch in batches:
        key = f"key-{batch:04d}"
        store.store(key, outcomes[batch], group=group)
        keys[batch] = key
    return keys


class TestManifestAppend:
    def test_store_indexes_and_appends_one_line(self, tmp_path, outcomes):
        store = MemoStore(tmp_path)
        store.store("k1", outcomes[8], group=GROUP)
        assert store.entry_for("k1") == ManifestEntry(
            "k1", Method.NO_PIPELINE.value, 8, GROUP
        )
        assert store.keys() == ["k1"]
        assert len(store) == 1
        lines = (tmp_path / MANIFEST_NAME).read_text().splitlines()
        assert [json.loads(line)["key"] for line in lines] == ["k1"]

    def test_restoring_the_same_outcome_appends_nothing(
        self, tmp_path, outcomes
    ):
        store = MemoStore(tmp_path)
        store.store("k1", outcomes[8], group=GROUP)
        before = (tmp_path / MANIFEST_NAME).read_text()
        store.store("k1", outcomes[8], group=GROUP)
        assert (tmp_path / MANIFEST_NAME).read_text() == before

    def test_fresh_instance_reads_the_index_back(self, tmp_path, outcomes):
        _fill(MemoStore(tmp_path), outcomes, (8, 16))
        reloaded = MemoStore(tmp_path)
        assert reloaded.keys() == ["key-0008", "key-0016"]
        entry = reloaded.entry_for("key-0016")
        assert entry is not None and entry.group == GROUP

    def test_payload_bytes_identical_to_plain_checkpoint_store(
        self, tmp_path, outcomes
    ):
        # The manifest must never leak into checkpoint payloads: golden
        # cell keys and the byte-compare resume guarantee depend on it.
        memo = MemoStore(tmp_path / "memo")
        plain = CheckpointStore(tmp_path / "plain")
        memo.store("k1", outcomes[8], group=GROUP)
        plain.store("k1", outcomes[8])
        assert (
            memo.path_for("k1").read_bytes() == plain.path_for("k1").read_bytes()
        )


class TestDriftRepair:
    def test_torn_trailing_line_is_repaired(self, tmp_path, outcomes):
        _fill(MemoStore(tmp_path), outcomes, (8, 16))
        manifest = tmp_path / MANIFEST_NAME
        with open(manifest, "a", encoding="utf-8") as fh:
            fh.write('{"key": "key-0032", "met')  # crashed mid-append
        store = MemoStore(tmp_path)
        assert store.keys() == ["key-0008", "key-0016"]
        for line in manifest.read_text().splitlines():
            json.loads(line)  # rewritten manifest is fully parseable

    def test_missing_manifest_backfills_from_plain_directory(
        self, tmp_path, outcomes
    ):
        plain = CheckpointStore(tmp_path)
        plain.store("k1", outcomes[8])
        plain.store("k2", outcomes[16])
        store = MemoStore(tmp_path)
        assert store.keys() == ["k1", "k2"]
        entry = store.entry_for("k1")
        assert entry == ManifestEntry("k1", Method.NO_PIPELINE.value, 8, None)
        assert (tmp_path / MANIFEST_NAME).is_file()

    def test_deleted_payload_drops_its_manifest_entry(self, tmp_path, outcomes):
        keys = _fill(MemoStore(tmp_path), outcomes, (8, 16))
        MemoStore(tmp_path).path_for(keys[8]).unlink()
        store = MemoStore(tmp_path)
        assert store.keys() == [keys[16]]
        raw = (tmp_path / MANIFEST_NAME).read_text()
        assert keys[8] not in raw

    def test_annotate_group_upgrades_backfilled_entries(
        self, tmp_path, outcomes
    ):
        CheckpointStore(tmp_path).store("k1", outcomes[8])
        store = MemoStore(tmp_path)
        assert store.entry_for("k1").group is None
        store.annotate_group("k1", GROUP)
        assert store.entry_for("k1").group == GROUP
        # Last writer wins across restarts, no rewrite needed.
        assert MemoStore(tmp_path).entry_for("k1").group == GROUP
        store.annotate_group("k1", GROUP)  # no-op: no duplicate line
        lines = (tmp_path / MANIFEST_NAME).read_text().splitlines()
        assert len([ln for ln in lines if '"k1"' in ln]) == 2


class TestQueries:
    def test_neighbors_order_by_log2_distance_then_batch(
        self, tmp_path, outcomes
    ):
        store = MemoStore(tmp_path)
        keys = _fill(store, outcomes, (8, 16, 64))
        store.store("other-group", outcomes[32], group="b" * 20)
        got = store.neighbors(GROUP, Method.NO_PIPELINE.value, 32, limit=2)
        # 16 and 64 tie at one octave; the smaller batch wins the tie.
        assert [e.key for e in got] == [keys[16], keys[64]]
        assert store.neighbors(GROUP, Method.NO_PIPELINE.value, 32, limit=9) == [
            store.entry_for(keys[16]),
            store.entry_for(keys[64]),
            store.entry_for(keys[8]),
        ]
        assert store.neighbors(GROUP, Method.BREADTH_FIRST.value, 32) == []
        assert store.neighbors(GROUP, Method.NO_PIPELINE.value, 32, limit=0) == []

    def test_neighbors_exclude_the_queried_batch_itself(
        self, tmp_path, outcomes
    ):
        store = MemoStore(tmp_path)
        keys = _fill(store, outcomes, (8, 16))
        got = store.neighbors(GROUP, Method.NO_PIPELINE.value, 8)
        assert [e.key for e in got] == [keys[16]]

    def test_load_many_skips_unindexed_keys(self, tmp_path, outcomes):
        store = MemoStore(tmp_path)
        keys = _fill(store, outcomes, (8,))
        # Written behind the index's back: present on disk, not indexed.
        CheckpointStore(tmp_path).store("stranger", outcomes[16])
        found = store.load_many([keys[8], "stranger", "absent"])
        assert sorted(found) == [keys[8]]
        assert found[keys[8]].batch_size == 8
