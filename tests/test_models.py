"""Tests for the transformer spec and the paper's counting formulas."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.models.presets import GPT3_175B, MODEL_1T, MODEL_6_6B, MODEL_52B, PRESETS
from repro.models.spec import TransformerSpec


class TestPresets:
    def test_table_5_1_dimensions_52b(self):
        assert (MODEL_52B.n_layers, MODEL_52B.n_heads) == (64, 64)
        assert (MODEL_52B.head_size, MODEL_52B.hidden_size) == (128, 8192)
        assert MODEL_52B.seq_length == 1024

    def test_table_5_1_dimensions_6_6b(self):
        assert (MODEL_6_6B.n_layers, MODEL_6_6B.n_heads) == (32, 32)
        assert (MODEL_6_6B.head_size, MODEL_6_6B.hidden_size) == (128, 4096)

    def test_52b_parameter_count(self):
        assert MODEL_52B.n_params == pytest.approx(52e9, rel=0.02)

    def test_6_6b_parameter_count(self):
        assert MODEL_6_6B.n_params == pytest.approx(6.6e9, rel=0.05)

    def test_gpt3_parameter_count(self):
        assert GPT3_175B.n_params == pytest.approx(175e9, rel=0.02)

    def test_1t_parameter_count(self):
        assert MODEL_1T.n_params == pytest.approx(1e12, rel=0.05)

    def test_presets_keyed_by_name(self):
        assert PRESETS["52B"] is MODEL_52B


class TestValidation:
    def test_head_mismatch_rejected(self):
        with pytest.raises(ValueError, match="N_heads"):
            TransformerSpec("bad", 2, 4, 100, 128, 16)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError, match="n_layers"):
            TransformerSpec("bad", 0, 4, 32, 128, 16)


class TestFlops:
    def test_flops_per_token_matches_8_flops_per_param(self):
        # Eq. (12): the layer term is 96 L h^2 = 8 x (12 L h^2) flop/token.
        spec = MODEL_52B
        layer_params = spec.n_layers * spec.params_per_layer
        layer_flops = 96.0 * spec.n_layers * spec.hidden_size**2
        assert layer_flops == pytest.approx(8.0 * layer_params)

    def test_recompute_ratio(self):
        # Recompute adds a forward pass: 96/72 ratio (Eq. 11 coefficient).
        with_r = MODEL_52B.flops_per_token(with_recompute=True)
        without = MODEL_52B.flops_per_token(with_recompute=False)
        assert with_r / without == pytest.approx(96.0 / 72.0)

    def test_per_sample_scales_with_seq(self):
        assert MODEL_52B.flops_per_sample() == pytest.approx(
            MODEL_52B.flops_per_token() * MODEL_52B.seq_length
        )

    def test_backward_is_twice_forward(self):
        fwd = MODEL_52B.flops_per_layer_per_sample(forward_only=True)
        bwd = MODEL_52B.flops_per_layer_per_sample(forward_only=False)
        assert bwd == pytest.approx(2.0 * fwd)

    def test_backward_with_recompute_is_3x_forward(self):
        fwd = MODEL_52B.flops_per_layer_per_sample(forward_only=True)
        bwd = MODEL_52B.flops_per_layer_per_sample(
            forward_only=False, with_recompute=True
        )
        assert bwd == pytest.approx(3.0 * fwd)

    def test_layer_flops_sum_matches_eq11(self):
        # forward (1x) + backward-with-recompute (3x) per layer, plus the
        # head's forward (1x) and backward (2x), must reassemble Eq. (11).
        spec = MODEL_6_6B
        total = (
            spec.n_layers * spec.flops_per_layer_per_sample(forward_only=True)
            + spec.n_layers
            * spec.flops_per_layer_per_sample(forward_only=False, with_recompute=True)
            + spec.head_flops_per_sample(forward_only=True)
            + spec.head_flops_per_sample(forward_only=False)
        )
        assert total == pytest.approx(
            spec.flops_per_sample(with_recompute=True), rel=0.01
        )


class TestMemoryFormulas:
    def test_activation_memory_example_gpt3(self):
        # Appendix A.2.2: GPT-3 uses ~552 MB per sample (N_TP = 8).
        assert GPT3_175B.activation_bytes_per_sample(8) == pytest.approx(
            552e6, rel=0.1
        )

    def test_activation_memory_example_1t(self):
        # Appendix A.2.2: 1T uses ~1050 MB per sample (N_TP = 8).
        assert MODEL_1T.activation_bytes_per_sample(8) == pytest.approx(
            1050e6, rel=0.15
        )

    def test_checkpoint_bytes_eq17_factor(self):
        spec = MODEL_52B
        assert spec.checkpoint_bytes_per_sample_per_layer(8) == pytest.approx(
            2 * spec.seq_length * spec.hidden_size / 8
        )

    def test_tp_divides_activation_memory(self):
        one = MODEL_52B.activation_bytes_per_sample(1)
        eight = MODEL_52B.activation_bytes_per_sample(8)
        assert eight < one

    def test_invalid_tp(self):
        with pytest.raises(ValueError, match="n_tp"):
            MODEL_52B.activation_bytes_per_sample(0)


class TestSpecProperties:
    @given(
        n_layers=st.integers(1, 16),
        n_heads=st.integers(1, 8),
        head_size=st.sampled_from([32, 64, 128]),
        seq=st.sampled_from([128, 1024]),
    )
    def test_flops_positive_and_monotone_in_layers(
        self, n_layers, n_heads, head_size, seq
    ):
        spec = TransformerSpec(
            "h", n_layers, n_heads, head_size, n_heads * head_size, seq
        )
        assert spec.flops_per_sample() > 0
        if n_layers > 1:
            smaller = TransformerSpec(
                "h", n_layers - 1, n_heads, head_size, n_heads * head_size, seq
            )
            assert smaller.flops_per_sample() < spec.flops_per_sample()

    def test_str_contains_params(self):
        assert "52" in str(MODEL_52B)

    def test_mlp_size(self):
        assert MODEL_52B.mlp_size == 4 * MODEL_52B.hidden_size
