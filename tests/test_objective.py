"""Tests for the pluggable search-objective subsystem.

Covers the objective contracts end to end: per-objective accounting
(the ``n_tried + n_excluded + n_pruned == |space|`` contract must hold
for every objective, constraint-infeasible candidates included),
per-objective branch-and-bound losslessness (winner *and* frontier
byte-identical with pruning disabled), the memory-constrained
acceptance scenario (a hybrid configuration wins a Figure-7 cell at
tightened headroom), Pareto frontier semantics, CLI parsing, JSON
round-trips, and the sweep-service threading (checkpoint keys and
worker contexts carry objectives).
"""

from __future__ import annotations

import pytest

from repro.hardware.cluster import DGX1_CLUSTER_64, DGX1_CLUSTER_64_ETHERNET
from repro.models.presets import MODEL_6_6B, MODEL_52B
from repro.parallel.config import Method, ScheduleKind
from repro.search.cell import SearchSettings, SweepCell
from repro.search.grid import MEMORY_HEADROOM, best_configuration
from repro.search.objective import (
    DEFAULT_OBJECTIVE,
    MemoryConstrainedThroughput,
    ParetoFrontObjective,
    ThroughputObjective,
    dominates,
    parse_objective,
    pareto_frontier,
)
from repro.search.service.serialize import (
    cell_key,
    objective_from_json,
    objective_to_json,
    outcome_from_json,
    outcome_to_json,
    settings_from_json,
    settings_to_json,
)
from repro.search.space import configuration_space
from repro.sim.calibration import DEFAULT_CALIBRATION

ALL_OBJECTIVES = [
    ThroughputObjective(),
    MemoryConstrainedThroughput(headroom=0.3),
    ParetoFrontObjective(),
]
OBJECTIVE_IDS = [o.kind for o in ALL_OBJECTIVES]


class TestObjectiveBasics:
    def test_default_is_throughput(self):
        assert DEFAULT_OBJECTIVE == ThroughputObjective()
        assert SearchSettings().objective == DEFAULT_OBJECTIVE

    def test_memory_constrained_validates_headroom(self):
        with pytest.raises(ValueError, match="headroom"):
            MemoryConstrainedThroughput(headroom=0.0)
        with pytest.raises(ValueError, match="headroom"):
            MemoryConstrainedThroughput(headroom=1.5)

    def test_memory_budget_tightens_only_for_constrained(self):
        assert ThroughputObjective().memory_budget(DGX1_CLUSTER_64) is None
        assert ParetoFrontObjective().memory_budget(DGX1_CLUSTER_64) is None
        budget = MemoryConstrainedThroughput(0.5).memory_budget(DGX1_CLUSTER_64)
        assert budget == pytest.approx(
            DGX1_CLUSTER_64.gpu.memory_bytes * 0.5
        )

    def test_parse_objective(self):
        assert parse_objective("throughput") == ThroughputObjective()
        assert parse_objective("pareto") == ParetoFrontObjective()
        assert parse_objective("memory-constrained") == (
            MemoryConstrainedThroughput()
        )
        assert parse_objective(
            "memory-constrained", memory_headroom=0.25
        ) == MemoryConstrainedThroughput(headroom=0.25)
        with pytest.raises(ValueError, match="unknown objective"):
            parse_objective("latency")
        with pytest.raises(ValueError, match="memory-headroom"):
            parse_objective("throughput", memory_headroom=0.5)

    @pytest.mark.parametrize("objective", ALL_OBJECTIVES, ids=OBJECTIVE_IDS)
    def test_json_round_trip(self, objective):
        assert objective_from_json(objective_to_json(objective)) == objective

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown objective kind"):
            objective_from_json({"kind": "latency"})


class TestSettingsSerialization:
    def test_default_objective_omitted_from_payload(self):
        # The byte-stability linchpin: default-objective payloads must be
        # exactly the pre-objective layout.
        assert settings_to_json(SearchSettings()) == {
            "bound_pruning": True,
            "include_hybrid": False,
        }

    @pytest.mark.parametrize("objective", ALL_OBJECTIVES, ids=OBJECTIVE_IDS)
    def test_settings_round_trip(self, objective):
        settings = SearchSettings(include_hybrid=True, objective=objective)
        assert settings_from_json(settings_to_json(settings)) == settings

    def test_non_default_objectives_change_cell_keys(self):
        cell = SweepCell(Method.BREADTH_FIRST, 32)
        keys = {
            cell_key(
                MODEL_6_6B, DGX1_CLUSTER_64, DEFAULT_CALIBRATION, cell,
                SearchSettings(objective=objective),
            )
            for objective in [DEFAULT_OBJECTIVE, *ALL_OBJECTIVES[1:]]
        }
        assert len(keys) == 3  # throughput, memory-constrained, pareto

    def test_headroom_is_part_of_the_key(self):
        cell = SweepCell(Method.BREADTH_FIRST, 32)
        a, b = (
            cell_key(
                MODEL_6_6B, DGX1_CLUSTER_64, DEFAULT_CALIBRATION, cell,
                SearchSettings(
                    objective=MemoryConstrainedThroughput(headroom=h)
                ),
            )
            for h in (0.3, 0.5)
        )
        assert a != b


class TestAccountingPerObjective:
    """Satellite: the counter contract holds for every objective."""

    @pytest.mark.parametrize("objective", ALL_OBJECTIVES, ids=OBJECTIVE_IDS)
    @pytest.mark.parametrize("method", list(Method))
    def test_counters_partition_the_space(self, objective, method):
        outcome = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, method, 64,
            settings=SearchSettings(objective=objective),
        )
        space = list(configuration_space(
            method, MODEL_6_6B, DGX1_CLUSTER_64, 64
        ))
        assert (
            outcome.n_tried + outcome.n_excluded + outcome.n_pruned
            == len(space)
        )

    def test_constraint_infeasible_candidates_count_as_excluded(self):
        plain = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, Method.BREADTH_FIRST, 64
        )
        constrained = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, Method.BREADTH_FIRST, 64,
            settings=SearchSettings(
                objective=MemoryConstrainedThroughput(headroom=0.2)
            ),
        )
        assert constrained.n_excluded > plain.n_excluded
        space = list(configuration_space(
            Method.BREADTH_FIRST, MODEL_6_6B, DGX1_CLUSTER_64, 64
        ))
        assert (
            constrained.n_tried
            + constrained.n_excluded
            + constrained.n_pruned
            == len(space)
        )

    def test_infeasible_budget_reports_no_best(self):
        outcome = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, Method.BREADTH_FIRST, 64,
            settings=SearchSettings(
                objective=MemoryConstrainedThroughput(headroom=0.001)
            ),
        )
        assert outcome.best is None
        assert outcome.n_tried == 0
        assert outcome.n_excluded > 0


class TestLosslessPruningPerObjective:
    """Winner and frontier identical with ``--no-bound-pruning``."""

    CELLS = [
        (Method.BREADTH_FIRST, 32, True),
        (Method.DEPTH_FIRST, 64, False),
        (Method.NON_LOOPED, 32, False),
    ]

    @pytest.mark.parametrize("objective", ALL_OBJECTIVES, ids=OBJECTIVE_IDS)
    @pytest.mark.parametrize(
        "method,batch,hybrid", CELLS,
        ids=[f"{m.value}-B{b}" for m, b, _h in CELLS],
    )
    def test_outcome_identical_without_pruning(
        self, objective, method, batch, hybrid
    ):
        pruned = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, method, batch,
            settings=SearchSettings(
                objective=objective, include_hybrid=hybrid
            ),
        )
        full = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, method, batch,
            settings=SearchSettings(
                objective=objective, include_hybrid=hybrid,
                bound_pruning=False,
            ),
        )
        pruned_json = outcome_to_json(pruned)
        full_json = outcome_to_json(full)
        assert pruned_json["best"] == full_json["best"]
        assert pruned_json.get("frontier") == full_json.get("frontier")
        assert full.n_pruned == 0
        assert pruned.n_excluded == full.n_excluded
        assert pruned.n_tried + pruned.n_pruned == full.n_tried

    def test_pareto_pruning_actually_fires(self):
        outcome = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, Method.BREADTH_FIRST, 32,
            settings=SearchSettings(objective=ParetoFrontObjective()),
        )
        assert outcome.n_pruned > 0


class TestMemoryConstrainedWinners:
    def test_loose_headroom_matches_throughput_objective(self):
        # At the fragmentation margin the constraint is a no-op: winners
        # must match the plain throughput argmax byte for byte.
        plain = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, Method.BREADTH_FIRST, 32
        )
        loose = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, Method.BREADTH_FIRST, 32,
            settings=SearchSettings(
                objective=MemoryConstrainedThroughput(
                    headroom=MEMORY_HEADROOM
                )
            ),
        )
        assert outcome_to_json(plain)["best"] == outcome_to_json(loose)["best"]

    def test_budget_is_respected_by_the_winner(self):
        headroom = 0.3
        outcome = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, Method.BREADTH_FIRST, 64,
            settings=SearchSettings(
                objective=MemoryConstrainedThroughput(headroom=headroom)
            ),
        )
        assert outcome.best is not None
        budget = DGX1_CLUSTER_64.gpu.memory_bytes * headroom
        assert outcome.best.memory.total <= budget

    def test_hybrid_wins_a_figure7_cell_under_tight_headroom(self):
        # The acceptance scenario: on the 52B Figure-7 grid at half the
        # device memory, the best feasible configuration is a hybrid —
        # the schedule family that can only tie under the throughput
        # objective (PR 3 finding) wins once memory binds.
        outcome = best_configuration(
            MODEL_52B, DGX1_CLUSTER_64, Method.BREADTH_FIRST, 128,
            settings=SearchSettings(
                objective=MemoryConstrainedThroughput(headroom=0.5),
                include_hybrid=True,
            ),
        )
        assert outcome.best is not None
        assert outcome.best.config.schedule is ScheduleKind.HYBRID

    def test_ethernet_hybrid_win(self):
        outcome = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64_ETHERNET, Method.BREADTH_FIRST, 128,
            settings=SearchSettings(
                objective=MemoryConstrainedThroughput(headroom=0.25),
                include_hybrid=True,
            ),
        )
        assert outcome.best is not None
        assert outcome.best.config.schedule is ScheduleKind.HYBRID


class TestParetoFrontier:
    @pytest.fixture(scope="class")
    def outcome(self):
        return best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, Method.BREADTH_FIRST, 32,
            settings=SearchSettings(objective=ParetoFrontObjective()),
        )

    def test_frontier_is_non_dominated_and_sorted(self, outcome):
        front = outcome.frontier
        assert front
        for i, a in enumerate(front):
            for j, b in enumerate(front):
                if i != j:
                    assert not dominates(a, b)
        tputs = [r.throughput_per_gpu for r in front]
        mems = [r.memory.total for r in front]
        assert tputs == sorted(tputs, reverse=True)
        assert mems == sorted(mems, reverse=True)

    def test_best_is_the_throughput_end_of_the_frontier(self, outcome):
        assert outcome.best is not None
        assert outcome.best == outcome.frontier[0]
        # ... and matches the plain throughput argmax on this cell.
        plain = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, Method.BREADTH_FIRST, 32
        )
        assert outcome.best.config == plain.best.config

    def test_single_winner_objectives_report_no_frontier(self):
        outcome = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, Method.BREADTH_FIRST, 32
        )
        assert outcome.frontier is None

    def test_frontier_serializes_and_round_trips(self, outcome):
        data = outcome_to_json(outcome)
        assert "frontier" in data
        restored = outcome_from_json(data)
        assert restored.frontier == outcome.frontier
        assert restored == outcome

    def test_default_outcome_payload_has_no_frontier_key(self):
        plain = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, Method.NO_PIPELINE, 8
        )
        assert "frontier" not in outcome_to_json(plain)

    def test_pareto_frontier_helper_order_independent(self, outcome):
        front = outcome.frontier
        assert pareto_frontier(reversed(front)) == front
        assert pareto_frontier(front) == front


class TestServiceThreading:
    def test_run_sweep_carries_objective(self, tmp_path):
        from repro.search.service import SweepOptions, run_sweep

        cells = [SweepCell(Method.NO_PIPELINE, 8)]
        outcomes = run_sweep(
            MODEL_6_6B, DGX1_CLUSTER_64, cells,
            options=SweepOptions(
                backend="serial",
                objective=ParetoFrontObjective(),
                checkpoint_dir=tmp_path,
            ),
        )
        assert outcomes[0].frontier is not None
        # Resume satisfies the cell from the checkpoint, frontier intact.
        resumed = run_sweep(
            MODEL_6_6B, DGX1_CLUSTER_64, cells,
            options=SweepOptions(
                backend="serial",
                objective=ParetoFrontObjective(),
                checkpoint_dir=tmp_path,
                resume=True,
            ),
        )
        assert resumed == outcomes

    def test_queue_context_round_trips_objective(self, tmp_path):
        from repro.search.service.queue import FileWorkQueue

        objective = MemoryConstrainedThroughput(headroom=0.4)
        queue = FileWorkQueue.create(
            tmp_path / "q", MODEL_6_6B, DGX1_CLUSTER_64, DEFAULT_CALIBRATION,
            settings=SearchSettings(objective=objective),
        )
        *_, settings = queue.load_context()
        assert settings.objective == objective
