"""Property test: every registered objective round-trips hash-identically.

The checkpoint contract requires ``objective_to_json`` /
``objective_from_json`` to be a lossless pair for *every* entry of
:data:`repro.search.objective.OBJECTIVE_KINDS` — cell keys hash the
serialized form, so a lossy round-trip would silently fork checkpoint
directories.  The registry is the property's domain: a newly registered
objective is covered with no test changes.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, strategies as st

from repro.search.objective import (
    OBJECTIVE_KINDS,
    MemoryConstrainedThroughput,
    Objective,
)
from repro.search.service.serialize import (
    canonical_dumps,
    objective_from_json,
    objective_to_json,
)


def _instances(kind: str, headroom: float) -> Objective:
    """One concrete instance per registered kind.

    ``headroom`` parameterizes the kinds that take parameters; kinds
    without parameters ignore it (their round-trip is structural).
    """
    cls = OBJECTIVE_KINDS[kind]
    if cls is MemoryConstrainedThroughput:
        return cls(headroom=headroom)
    return cls()


@given(
    kind=st.sampled_from(sorted(OBJECTIVE_KINDS)),
    headroom=st.floats(
        min_value=0.01, max_value=1.0, allow_nan=False, exclude_min=False
    ),
)
def test_registered_objectives_roundtrip_hash_identically(kind, headroom):
    objective = _instances(kind, headroom)
    payload = objective_to_json(objective)
    restored = objective_from_json(payload)

    assert type(restored) is type(objective)
    assert restored == objective
    # Hash-identical: the canonical JSON (the hashed bytes) survives the
    # round trip exactly.
    assert canonical_dumps(objective_to_json(restored)) == canonical_dumps(
        payload
    )


@given(kind=st.sampled_from(sorted(OBJECTIVE_KINDS)))
def test_payload_kind_tag_matches_registry(kind):
    payload = objective_to_json(_instances(kind, 0.5))
    assert payload["kind"] == kind
    assert OBJECTIVE_KINDS[payload["kind"]].kind == kind


def test_unknown_kind_raises_cleanly_on_load():
    with pytest.raises(ValueError, match="unknown objective kind"):
        objective_from_json({"kind": "does-not-exist"})


def test_unregistered_objective_raises_cleanly_on_save():
    @dataclasses.dataclass(frozen=True)
    class Rogue(Objective):
        kind = "rogue"

    with pytest.raises(ValueError, match="not registered"):
        objective_to_json(Rogue())
