"""Tests for :mod:`repro.obs`: registry, spans, report, trajectory.

The contracts pinned here:

- the default recorder is the shared no-op one, and the instrumentation
  API is safe (and stateless) to call through it;
- ``recording()`` installs/restores the active recorder exception-safely;
- snapshots round-trip through JSON and ``read_snapshots`` tolerates the
  debris of killed writers;
- spans nest (depth + time containment) and timers are monotone under a
  hand-driven fake clock;
- the obs counters written by :func:`repro.search.grid.best_configuration`
  agree exactly with the search's own ``n_tried``/``n_excluded``/
  ``n_pruned`` accounting — the instrumentation measures the pipeline it
  claims to measure;
- the attribution report aggregates multi-actor snapshots and its ``ok``
  flag tracks the two required sections;
- the perf-trajectory recorder appends one entry per (bench, commit) and
  survives corrupt files.
"""

from __future__ import annotations

import json

import pytest

from repro.hardware.cluster import DGX1_CLUSTER_64
from repro.models.presets import MODEL_6_6B
from repro.obs import (
    NULL_RECORDER,
    MetricsRegistry,
    build_report,
    get_recorder,
    install,
    read_snapshots,
    recording,
    snapshot_from_json,
    uninstall,
    write_snapshot_line,
)
from repro.obs.report import quantile, report_to_json_text
from repro.obs.trajectory import current_commit, load_trajectory, record_entry
from repro.parallel.config import Method
from repro.search.grid import best_configuration


class FakeClock:
    """Hand-driven monotonic clock for span/timer tests."""

    def __init__(self, start: float = 100.0) -> None:
        self.t = start

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def make_registry(clock: FakeClock | None = None) -> MetricsRegistry:
    clock = clock if clock is not None else FakeClock()
    return MetricsRegistry(actor="test", clock=clock, wall_clock=lambda: 5000.0)


class TestDisabledRecorder:
    def test_default_is_the_shared_noop(self):
        rec = get_recorder()
        assert rec is NULL_RECORDER
        assert rec.enabled is False

    def test_noop_api_is_callable_and_stateless(self):
        rec = NULL_RECORDER
        rec.count("a")
        rec.count("a", 5.0)
        rec.gauge("b", 1.0)
        rec.gauge_max("b", 2.0)
        rec.observe("c", 0.5)
        with rec.span("outer", key="k"):
            with rec.timer("t"):
                pass
        assert not hasattr(rec, "counters")

    def test_span_and_timer_share_one_null_context(self):
        # No allocation on the disabled path: every call returns the
        # same reusable context manager.
        assert NULL_RECORDER.span("a") is NULL_RECORDER.timer("b")
        assert NULL_RECORDER.span("a") is NULL_RECORDER.span("c", x=1)

    def test_install_uninstall(self):
        registry = make_registry()
        try:
            install(registry)
            assert get_recorder() is registry
        finally:
            uninstall()
        assert get_recorder() is NULL_RECORDER

    def test_recording_restores_previous_recorder_on_error(self):
        with pytest.raises(RuntimeError):
            with recording(make_registry()) as registry:
                assert get_recorder() is registry
                raise RuntimeError("boom")
        assert get_recorder() is NULL_RECORDER

    def test_recording_default_registry(self):
        with recording() as registry:
            assert isinstance(registry, MetricsRegistry)
            get_recorder().count("x")
        assert registry.counters == {"x": 1.0}
        assert get_recorder() is NULL_RECORDER


class TestMetricsRegistry:
    def test_counters_gauges_histograms(self):
        registry = make_registry()
        registry.count("cells")
        registry.count("cells", 2.0)
        registry.gauge("busy", 0.25)
        registry.gauge("busy", 0.75)  # last write wins
        registry.gauge_max("hw", 3.0)
        registry.gauge_max("hw", 1.0)  # never lowers
        registry.observe("ratio", 0.5)
        registry.observe("ratio", 0.7)
        assert registry.counters == {"cells": 3.0}
        assert registry.gauges == {"busy": 0.75, "hw": 3.0}
        assert registry.histograms == {"ratio": [0.5, 0.7]}

    def test_span_nesting_depth_and_containment(self):
        clock = FakeClock()
        registry = make_registry(clock)
        with registry.span("outer", cell="a"):
            clock.advance(1.0)
            with registry.span("inner"):
                clock.advance(0.5)
            clock.advance(0.25)
        spans = {s["name"]: s for s in registry.spans}
        assert spans["inner"]["depth"] == 1
        assert spans["outer"]["depth"] == 0
        assert spans["outer"]["attrs"] == {"cell": "a"}
        # Epoch anchoring: epoch(t) = wall_anchor + (t - perf_anchor).
        assert spans["outer"]["start"] == pytest.approx(5000.0)
        assert spans["inner"]["start"] == pytest.approx(5001.0)
        assert spans["inner"]["end"] == pytest.approx(5001.5)
        assert spans["outer"]["end"] == pytest.approx(5001.75)
        assert (
            spans["outer"]["start"]
            <= spans["inner"]["start"]
            <= spans["inner"]["end"]
            <= spans["outer"]["end"]
        )

    def test_out_of_order_close_stays_well_nested(self):
        # A crashed inner block can skip its own __exit__; closing the
        # outer span must close everything above it at the same instant.
        clock = FakeClock()
        registry = make_registry(clock)
        outer = registry.span("outer")
        outer.__enter__()
        clock.advance(1.0)
        registry.span("inner").__enter__()  # never exited
        clock.advance(1.0)
        outer.__exit__(None, None, None)
        assert not registry._span_stack
        assert [s["name"] for s in registry.spans] == ["inner", "outer"]
        assert registry.spans[0]["end"] == registry.spans[1]["end"]

    def test_timer_monotone_under_fake_clock(self):
        clock = FakeClock()
        registry = make_registry(clock)
        for dt in (0.0, 0.25, 1.5):
            with registry.timer("stage.seconds"):
                clock.advance(dt)
        values = registry.histograms["stage.seconds"]
        assert values == [0.0, 0.25, 1.5]
        assert all(v >= 0.0 for v in values)
        assert values == sorted(values)  # the clock never ran backward


class TestSnapshots:
    def test_round_trips_through_json(self):
        clock = FakeClock()
        registry = make_registry(clock)
        registry.count("n", 2.0)
        registry.gauge("g", 1.5)
        registry.observe("h", 0.5)
        registry.observe("h", 1.5)
        with registry.span("s", key="k"):
            clock.advance(1.0)
        snap = registry.snapshot(meta={"run": "test"})
        restored = snapshot_from_json(json.loads(json.dumps(snap, sort_keys=True)))
        assert restored == snap
        assert restored["actor"] == "test"
        assert restored["counters"] == {"n": 2.0}
        hist = restored["histograms"]["h"]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(2.0)
        assert hist["min"] == 0.5
        assert hist["max"] == 1.5
        assert hist["values"] == [0.5, 1.5]
        assert restored["meta"] == {"run": "test"}

    @pytest.mark.parametrize(
        "payload",
        [
            "not a dict",
            {"kind": "other"},
            {"kind": "obs-snapshot", "format": 999},
            {"kind": "obs-snapshot", "format": 1, "counters": []},
            {"kind": "obs-snapshot", "format": 1, "spans": {}},
        ],
    )
    def test_rejects_malformed_payloads(self, payload):
        with pytest.raises(ValueError):
            snapshot_from_json(payload)

    def test_read_snapshots_skips_debris(self, tmp_path):
        registry = make_registry()
        registry.count("n")
        path = tmp_path / "metrics" / "a.jsonl"
        write_snapshot_line(path, registry.snapshot())
        with open(path, "ab") as fh:
            fh.write(b'{"kind": "obs-sna')  # killed writer: torn line
        (tmp_path / "metrics" / "b.jsonl").write_bytes(
            b"not json\n"
            b'{"kind": "other"}\n'  # valid JSON, not a snapshot
            b"\xff\xfe\n"  # not even UTF-8
        )
        # Directory mode and single-file mode agree; the one good line wins.
        assert len(read_snapshots(tmp_path / "metrics")) == 1
        assert len(read_snapshots(path)) == 1
        assert read_snapshots(tmp_path / "missing") == []


class TestSearchInstrumentation:
    @pytest.fixture(scope="class")
    def searched(self):
        with recording(MetricsRegistry(actor="test")) as registry:
            outcome = best_configuration(
                MODEL_6_6B, DGX1_CLUSTER_64, Method.DEPTH_FIRST, 8
            )
        return registry, outcome

    def test_counters_match_search_accounting(self, searched):
        registry, outcome = searched
        c = registry.counters
        # The pipeline contract, observed two ways: the obs counters must
        # reproduce the outcome's own accounting exactly.
        assert c["search.candidates.enumerated"] == (
            outcome.n_tried + outcome.n_excluded + outcome.n_pruned
        )
        assert c["search.candidates.simulated"] == outcome.n_tried
        assert c["search.candidates.excluded"] == outcome.n_excluded
        assert c["search.candidates.pruned"] == outcome.n_pruned
        assert c["search.cells"] == 1.0

    def test_engine_and_warm_start_counters(self, searched):
        registry, outcome = searched
        c = registry.counters
        assert c["engine.runs"] == outcome.n_tried
        assert c["engine.events_popped"] > 0
        assert registry.gauges["engine.heap_high_water"] >= 1
        assert c["search.warm_start.hits"] + c["search.warm_start.misses"] > 0

    def test_stage_timers_and_tightness(self, searched):
        registry, outcome = searched
        for stage in ("memory_filter", "bound_order", "simulate"):
            assert len(registry.histograms[f"search.stage.{stage}.seconds"]) == 1
        tightness = registry.histograms["search.bound.tightness.DEPTH_FIRST"]
        assert 0 < len(tightness) <= outcome.n_tried
        assert all(v > 0.0 for v in tightness)

    def test_stage_spans_nest_under_the_cell_span(self, searched):
        registry, _outcome = searched
        by_name = {s["name"]: s for s in registry.spans}
        cell = by_name["search.cell"]
        assert cell["depth"] == 0
        assert cell["attrs"] == {"method": "DEPTH_FIRST", "batch_size": 8}
        for stage in ("memory_filter", "bound_order", "simulate"):
            span = by_name[f"search.stage.{stage}"]
            assert span["depth"] == 1
            assert cell["start"] <= span["start"] <= span["end"] <= cell["end"]


class TestReport:
    def test_empty_snapshots_are_not_ok(self):
        report = build_report([])
        assert not report.ok
        assert "NO DATA" in report.format()

    def test_quantile(self):
        assert quantile([3.0, 1.0, 2.0], 0.0) == 1.0
        assert quantile([3.0, 1.0, 2.0], 0.5) == 2.0
        assert quantile([3.0, 1.0, 2.0], 1.0) == 3.0
        with pytest.raises(ValueError):
            quantile([], 0.5)

    def test_search_snapshot_builds_required_sections(self):
        with recording(MetricsRegistry(actor="cell")) as registry:
            best_configuration(MODEL_6_6B, DGX1_CLUSTER_64, Method.NO_PIPELINE, 8)
        report = build_report([registry.snapshot()])
        assert report.ok
        stages = [s["stage"] for s in report.stage_times]
        assert stages == ["memory_filter", "bound_order", "simulate"]
        assert "NO_PIPELINE" in report.bound_tightness
        dist = report.bound_tightness["NO_PIPELINE"]
        assert dist["min"] <= dist["p50"] <= dist["max"]
        assert 0.0 <= report.warm_start["hit_rate"] <= 1.0
        # The memory filter's in/out counts reproduce the accounting.
        memory = report.stage_times[0]
        assert memory["candidates_in"] >= memory["candidates_out"]
        text = report.format()
        assert "Stage-time attribution" in text
        assert "Bound tightness" in text

    def test_worker_snapshots_aggregate_into_service_sections(self):
        worker = MetricsRegistry(actor="w0")
        worker.count("worker.cells_completed", 3)
        worker.count("worker.checkpoint_hits", 1)
        worker.count("worker.heartbeat_renewals", 2)
        worker.gauge("worker.busy_fraction", 0.8)
        worker.count("queue.events.claim", 3)
        coordinator = MetricsRegistry(actor="coordinator")
        coordinator.count("sweep.cells_total", 4)
        coordinator.count("sweep.cells_computed", 3)
        report = build_report([worker.snapshot(), coordinator.snapshot()])
        assert report.service == {
            "events.claim": 3.0,
            "cells_total": 4.0,
            "cells_computed": 3.0,
        }
        assert len(report.workers) == 1
        w = report.workers[0]
        assert w["actor"] == "w0"
        assert w["cells_completed"] == 3
        assert w["busy_fraction"] == pytest.approx(0.8)
        assert "Per-worker sweep activity" in report.format()

    def test_json_rendering_round_trips(self):
        with recording(MetricsRegistry(actor="cell")) as registry:
            best_configuration(MODEL_6_6B, DGX1_CLUSTER_64, Method.NO_PIPELINE, 8)
        report = build_report([registry.snapshot()])
        payload = json.loads(report_to_json_text(report))
        assert payload["ok"] is True
        assert payload["n_snapshots"] == 1
        assert {s["stage"] for s in payload["stage_times"]} == {
            "memory_filter",
            "bound_order",
            "simulate",
        }


class TestTrajectory:
    def test_record_load_and_per_commit_dedup(self, tmp_path):
        path = tmp_path / "BENCH_search.json"
        record_entry(
            path,
            bench="b",
            seconds=1.0,
            commit="c1",
            cell={"method": "DEPTH_FIRST"},
            counters={"n_tried": 7},
        )
        # Same bench, same commit: the rerun replaces the measurement.
        record_entry(path, bench="b", seconds=2.0, commit="c1")
        trajectory = load_trajectory(path)
        assert len(trajectory["entries"]) == 1
        assert trajectory["entries"][0]["seconds"] == 2.0
        # A new commit extends the trajectory.
        record_entry(path, bench="b", seconds=3.0, commit="c2")
        record_entry(path, bench="other", seconds=4.0, commit="c2")
        entries = load_trajectory(path)["entries"]
        assert [(e["bench"], e["commit"]) for e in entries] == [
            ("b", "c1"),
            ("b", "c2"),
            ("other", "c2"),
        ]

    def test_corrupt_file_is_replaced_not_fatal(self, tmp_path):
        path = tmp_path / "BENCH_search.json"
        path.write_text("{nope")
        assert load_trajectory(path) == {"format": 1, "entries": []}
        record_entry(path, bench="b", seconds=1.0, commit="c")
        assert len(load_trajectory(path)["entries"]) == 1

    def test_current_commit_is_nonempty(self):
        assert current_commit()
