"""Tests for the transcribed paper data."""

from __future__ import annotations

import pytest

from repro.models.presets import MODEL_6_6B, MODEL_52B
from repro.paper_data import (
    HEADLINE_GAIN_VS_DEPTH_FIRST,
    HEADLINE_GAIN_VS_NON_LOOPED,
    PAPER_ANCHORS,
)
from repro.parallel.config import Method


class TestAnchors:
    def test_all_anchor_configs_valid(self):
        for anchor in PAPER_ANCHORS:
            spec = MODEL_52B if anchor.model == "52B" else MODEL_6_6B
            anchor.config.validate_against(spec.n_layers)
            assert anchor.config.n_gpus <= 64

    def test_batch_sizes_match_labels(self):
        for anchor in PAPER_ANCHORS:
            batch = int(anchor.label.split("B=")[1].split(" ")[0])
            assert anchor.config.batch_size == batch, anchor.label

    def test_every_method_represented(self):
        methods = {a.config.method for a in PAPER_ANCHORS}
        assert methods == set(Method)

    def test_every_table_represented(self):
        assert {a.table for a in PAPER_ANCHORS} == {"E.1", "E.2", "E.3"}

    def test_published_values_positive(self):
        for anchor in PAPER_ANCHORS:
            assert anchor.throughput_tflops > 0
            assert anchor.memory_gb > anchor.memory_min_gb > 0

    def test_headline_constants(self):
        assert HEADLINE_GAIN_VS_DEPTH_FIRST == pytest.approx(1.43)
        assert HEADLINE_GAIN_VS_NON_LOOPED == pytest.approx(1.53)

    def test_ethernet_only_in_e3(self):
        for anchor in PAPER_ANCHORS:
            assert anchor.ethernet == (anchor.table == "E.3")


class TestToleranceBands:
    """Shape of the per-anchor reproduction bands (the assertions that
    the simulator actually sits inside them live in tests/test_fit.py,
    which checks both the hand-tuned and the fitted calibration)."""

    def test_bands_are_ordered_and_bracket_unity_scale(self):
        for anchor in PAPER_ANCHORS:
            for low, high in (anchor.throughput_band, anchor.memory_band):
                assert 0.0 < low < high
                # A band that excludes the whole [0.5, 2] decade would
                # mean the row is transcribed wrong, not mis-simulated.
                assert low < 2.0 and high > 0.5

    def test_every_anchor_has_a_tighter_band_than_the_global_ones(self):
        from repro.paper_data import MEMORY_BAND, THROUGHPUT_BAND

        for anchor in PAPER_ANCHORS:
            t_width = anchor.throughput_band[1] - anchor.throughput_band[0]
            m_width = anchor.memory_band[1] - anchor.memory_band[0]
            assert t_width < THROUGHPUT_BAND[1] - THROUGHPUT_BAND[0]
            assert m_width < MEMORY_BAND[1] - MEMORY_BAND[0]
