"""Tests for ParallelConfig validation and batch algebra."""

from __future__ import annotations

import pytest

from repro.parallel.config import Method, ParallelConfig, ScheduleKind, Sharding


def cfg(**kw):
    base = dict(n_dp=2, n_pp=4, n_tp=2, microbatch_size=1, n_microbatches=8)
    base.update(kw)
    return ParallelConfig(**base)


class TestBatchAlgebra:
    def test_batch_size(self):
        assert cfg().batch_size == 2 * 8 * 1

    def test_n_gpus(self):
        assert cfg().n_gpus == 16

    def test_batch_per_gpu(self):
        # B = 2 * 8 * 1 = 16 over 16 GPUs.
        assert cfg().batch_per_gpu == pytest.approx(1.0)
        assert cfg(n_tp=4).batch_per_gpu == pytest.approx(0.5)

    def test_n_stages(self):
        assert cfg(n_loop=4, schedule=ScheduleKind.BREADTH_FIRST).n_stages == 16


class TestValidation:
    def test_positive_fields_required(self):
        with pytest.raises(ValueError, match="n_dp"):
            cfg(n_dp=0)

    def test_non_looped_rejects_n_loop(self):
        with pytest.raises(ValueError, match="n_loop == 1"):
            cfg(schedule=ScheduleKind.GPIPE, n_loop=2)

    def test_depth_first_requires_multiple(self):
        with pytest.raises(ValueError, match="multiple"):
            cfg(schedule=ScheduleKind.DEPTH_FIRST, n_loop=2, n_microbatches=6)

    def test_depth_first_single_device_any_nmb(self):
        c = cfg(
            n_pp=1, schedule=ScheduleKind.DEPTH_FIRST, n_loop=1, n_microbatches=3
        )
        assert c.n_stages == 1

    def test_validate_against_too_many_stages(self):
        c = cfg(n_loop=8, schedule=ScheduleKind.BREADTH_FIRST)
        with pytest.raises(ValueError, match="stages exceed"):
            c.validate_against(n_layers=16)

    def test_validate_against_tp_exceeds_node(self):
        c = cfg(n_tp=16)
        with pytest.raises(ValueError, match="node size"):
            c.validate_against(n_layers=64, node_size=8)

    def test_non_integer_rejected(self):
        with pytest.raises(ValueError, match="n_pp"):
            cfg(n_pp=2.5)


class TestMethodClassification:
    def test_no_pipeline(self):
        assert cfg(n_pp=1).method is Method.NO_PIPELINE

    def test_non_looped_gpipe(self):
        assert cfg(schedule=ScheduleKind.GPIPE).method is Method.NON_LOOPED

    def test_non_looped_1f1b(self):
        assert cfg(schedule=ScheduleKind.ONE_F_ONE_B).method is Method.NON_LOOPED

    def test_depth_first(self):
        c = cfg(schedule=ScheduleKind.DEPTH_FIRST, n_loop=2)
        assert c.method is Method.DEPTH_FIRST

    def test_breadth_first(self):
        c = cfg(schedule=ScheduleKind.BREADTH_FIRST, n_loop=2)
        assert c.method is Method.BREADTH_FIRST

    def test_breadth_first_unlooped_counts_as_breadth_first(self):
        c = cfg(schedule=ScheduleKind.BREADTH_FIRST, n_loop=1)
        assert c.method is Method.BREADTH_FIRST


class TestMisc:
    def test_with_updates(self):
        assert cfg().with_(n_dp=4).n_dp == 4

    def test_with_revalidates(self):
        with pytest.raises(ValueError):
            cfg().with_(n_pp=0)

    def test_describe_mentions_sharding(self):
        assert "FS" in cfg(sharding=Sharding.FULL).describe()

    def test_uses_full_sharding(self):
        assert cfg(sharding=Sharding.FULL).uses_full_sharding
        assert not cfg(sharding=Sharding.PARTIAL).uses_full_sharding

    def test_is_looped_kinds(self):
        assert ScheduleKind.BREADTH_FIRST.is_looped
        assert ScheduleKind.DEPTH_FIRST.is_looped
        assert not ScheduleKind.GPIPE.is_looped
        assert not ScheduleKind.ONE_F_ONE_B.is_looped
