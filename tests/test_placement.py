"""Tests for layer placement (Figure 3)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.placement import Placement


class TestFigure3:
    def test_standard_placement(self):
        p = Placement(16, 4, 1)
        assert p.layers_of_device(0) == [0, 1, 2, 3]
        assert p.layers_of_device(3) == [12, 13, 14, 15]

    def test_looping_placement(self):
        p = Placement(16, 4, 4)
        assert p.layers_of_device(0) == [0, 4, 8, 12]
        assert p.layers_of_device(1) == [1, 5, 9, 13]
        assert p.layers_of_device(3) == [3, 7, 11, 15]

    def test_coil_device_of_stage(self):
        p = Placement(16, 4, 4)
        assert [p.device_of_stage(s) for s in range(8)] == [0, 1, 2, 3, 0, 1, 2, 3]


class TestStructure:
    def test_boundaries_cover_all_layers(self):
        p = Placement(10, 3, 1)
        bounds = p.stage_boundaries()
        assert bounds[0] == 0 and bounds[-1] == 10

    def test_uneven_split_near_identical(self):
        p = Placement(10, 3, 1)
        sizes = [p.n_layers_of_stage(s) for s in range(3)]
        assert sorted(sizes) == [3, 3, 4]
        assert max(sizes) - min(sizes) <= 1

    def test_stage_of_layer_roundtrip(self):
        p = Placement(13, 2, 3)
        for layer in range(13):
            stage = p.stage_of_layer(layer)
            assert layer in p.layers_of_stage(stage)

    def test_embedding_and_head_stages(self):
        p = Placement(16, 4, 2)
        assert p.has_embedding(0)
        assert not p.has_embedding(1)
        assert p.has_output_head(7)
        assert not p.has_output_head(0)

    def test_describe_lists_devices(self):
        assert "device 0" in Placement(4, 2).describe()


class TestValidation:
    def test_more_stages_than_layers_rejected(self):
        with pytest.raises(ValueError, match="stages exceed"):
            Placement(4, 4, 2)

    def test_stage_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Placement(8, 2).layers_of_stage(2)

    def test_device_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Placement(8, 2).stages_of_device(2)

    def test_layer_out_of_range(self):
        with pytest.raises(ValueError, match="out of range"):
            Placement(8, 2).stage_of_layer(8)

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            Placement(0, 1)


@given(
    n_pp=st.integers(1, 8),
    n_loop=st.integers(1, 4),
    extra=st.integers(0, 17),
)
def test_partition_property(n_pp, n_loop, extra):
    """Every layer belongs to exactly one stage; stages near-identical."""
    n_stages = n_pp * n_loop
    n_layers = n_stages + extra
    p = Placement(n_layers, n_pp, n_loop)
    seen = []
    for stage in range(n_stages):
        seen.extend(p.layers_of_stage(stage))
    assert seen == list(range(n_layers))
    sizes = [p.n_layers_of_stage(s) for s in range(n_stages)]
    assert max(sizes) - min(sizes) <= 1
    # Devices partition the stages.
    all_stages = sorted(
        s for d in range(n_pp) for s in p.stages_of_device(d)
    )
    assert all_stages == list(range(n_stages))
