"""Planner service: memo hits, coalescing, seeding, protocol, HTTP.

The acceptance contract of the planner refactor, end to end:

- **Byte identity** — an exact-hit answer (and a neighbor-seeded one)
  must equal a cold ``best_configuration`` checkpoint byte for byte,
  for every objective kind.  Memoization and warm starts are allowed to
  change *latency*, never *answers*.
- **Coalescing** — N identical concurrent queries run exactly one
  ``search.grid`` span.
- **Wire protocol** — requests validate loudly, answers round-trip
  through JSON, and the stdlib HTTP front-end serves /plan, /presets
  and /healthz.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.obs import MetricsRegistry, recording
from repro.planner import (
    PlanRequest,
    Planner,
    query_key,
    request_from_json,
    request_to_json,
    start_planner_server,
)
from repro.search.cell import SweepCell
from repro.search.grid import best_configuration
from repro.search.objective import OBJECTIVE_KINDS
from repro.search.service.serialize import cell_key

MODEL = "6.6B"
CLUSTER = "dgx1-64"
BF = "Breadth-first"


def _request(batch_sizes=(8,), **overrides):
    fields = dict(
        model=MODEL,
        cluster=CLUSTER,
        batch_sizes=tuple(batch_sizes),
        methods=(BF,),
    )
    fields.update(overrides)
    return PlanRequest(**fields)


def _plan(planner, request):
    return asyncio.run(planner.plan(request))


def _span_count(registry, name):
    return sum(1 for s in registry.snapshot()["spans"] if s["name"] == name)


class TestAnswers:
    @pytest.mark.parametrize("objective", sorted(OBJECTIVE_KINDS))
    def test_exact_hit_is_byte_identical_to_cold_search(
        self, tmp_path, objective
    ):
        request = _request(objective=objective)
        with Planner(tmp_path) as planner:
            first = _plan(planner, request)
        assert first.sources == ("computed",)

        # A fresh planner over the same directory answers from the memo.
        with Planner(tmp_path) as planner:
            again = _plan(planner, request)
            resolved = request.resolve()
            key = again.cell_keys[0]
            assert again.sources == ("exact",)
            assert again.query_key == query_key(resolved, planner.calibration)
            assert again.outcomes == first.outcomes
            assert again.best == first.best

            # The memoized checkpoint is the cold search's, byte for byte.
            cell = resolved
            cold = best_configuration(
                cell.spec,
                cell.cluster,
                cell.methods[0],
                cell.batch_sizes[0],
                planner.calibration,
                cell.settings,
            )
            assert (
                planner.store.path_for(key).read_bytes()
                == planner.store.payload_bytes(key, cold)
            )

    def test_cell_keys_match_the_sweep_service_scheme(self, tmp_path):
        # A plan decomposes into exactly the cell keys a sweep over the
        # same context would compute — that is what lets the planner
        # serve exact hits out of an existing sweep checkpoint dir.
        request = _request(batch_sizes=(8, 16), methods=(BF, "Depth-first"))
        with Planner(tmp_path) as planner:
            answer = _plan(planner, request)
            resolved = request.resolve()
            expected = tuple(
                cell_key(
                    resolved.spec,
                    resolved.cluster,
                    planner.calibration,
                    SweepCell(method, batch),
                    resolved.settings,
                )
                for method in resolved.methods
                for batch in resolved.batch_sizes
            )
        assert answer.cell_keys == expected

    def test_seeded_miss_is_byte_identical_to_cold_search(self, tmp_path):
        with Planner(tmp_path) as planner:
            _plan(planner, _request(batch_sizes=(8,)))
            with recording(MetricsRegistry(actor="test")) as registry:
                answer = _plan(planner, _request(batch_sizes=(16,)))
            assert answer.sources == ("seeded",)
            counters = registry.snapshot()["counters"]
            assert counters["planner.hit.seeded"] == 1
            # The warm-start pass ran (its counter was emitted); the
            # number of *newly* priced families can legitimately be 0
            # here because the in-process B=8 search already warmed them.
            assert "search.warm_start.seeded_families" in counters

            resolved = _request(batch_sizes=(16,)).resolve()
            cold = best_configuration(
                resolved.spec,
                resolved.cluster,
                resolved.methods[0],
                16,
                planner.calibration,
                resolved.settings,
            )
            key = answer.cell_keys[0]
            assert (
                planner.store.path_for(key).read_bytes()
                == planner.store.payload_bytes(key, cold)
            )

    def test_best_ranks_across_cells(self, tmp_path):
        request = _request(batch_sizes=(8, 16))
        with Planner(tmp_path) as planner:
            answer = _plan(planner, request)
        feasible = [o.best for o in answer.outcomes if o.best is not None]
        assert answer.best is not None
        assert answer.best.throughput_per_gpu == max(
            r.throughput_per_gpu for r in feasible
        )


class TestCoalescing:
    def test_identical_concurrent_queries_run_one_search(self, tmp_path):
        request = _request()

        async def fan_out(planner, n):
            return await asyncio.gather(
                *(planner.plan(request) for _ in range(n))
            )

        with Planner(tmp_path) as planner:
            with recording(MetricsRegistry(actor="test")) as registry:
                answers = asyncio.run(fan_out(planner, 4))

        assert _span_count(registry, "search.grid") == 1
        counters = registry.snapshot()["counters"]
        assert counters["planner.coalesced"] == 3
        assert counters["planner.requests"] == 4
        sources = sorted(a.sources[0] for a in answers)
        assert sources == ["coalesced", "coalesced", "coalesced", "computed"]
        # Every follower shares the leader's object, not a re-parse.
        outcomes = {id(a.outcomes[0]) for a in answers}
        assert len(outcomes) == 1

    def test_sequential_queries_do_not_coalesce(self, tmp_path):
        request = _request()
        with Planner(tmp_path) as planner:
            with recording(MetricsRegistry(actor="test")) as registry:
                first = _plan(planner, request)
                second = _plan(planner, request)
        assert first.sources == ("computed",)
        assert second.sources == ("exact",)
        counters = registry.snapshot()["counters"]
        assert "planner.coalesced" not in counters
        assert counters["planner.hit.exact"] == 1
        assert _span_count(registry, "search.grid") == 1


class TestProtocol:
    @pytest.mark.parametrize(
        "bad",
        [
            dict(batch_sizes=()),
            dict(batch_sizes=(0,)),
            dict(batch_sizes=(8, 8)),
        ],
    )
    def test_request_validation_rejects_bad_batches(self, bad):
        with pytest.raises(ValueError):
            _request(**bad)

    @pytest.mark.parametrize(
        "bad",
        [
            dict(model="no-such-model"),
            dict(cluster="no-such-cluster"),
            dict(objective="no-such-objective"),
            dict(memory_headroom=0.5),  # headroom without memory objective
            dict(methods=("No-such-method",)),
        ],
    )
    def test_resolution_rejects_unknown_names(self, bad):
        with pytest.raises(ValueError):
            _request(**bad).resolve()

    def test_request_round_trips_through_json(self):
        request = _request(
            batch_sizes=(8, 16),
            objective="memory-constrained",
            memory_headroom=0.8,
            include_hybrid=True,
        )
        assert request_from_json(request_to_json(request)) == request

    def test_unknown_request_fields_are_rejected(self):
        data = request_to_json(_request())
        data["batchsize"] = 8
        with pytest.raises(ValueError, match="batchsize"):
            request_from_json(data)

    def test_empty_methods_mean_all_four(self):
        resolved = _request(methods=()).resolve()
        assert len(resolved.methods) == 4

    def test_query_keys_separate_requests_that_differ(self, tmp_path):
        with Planner(tmp_path) as planner:
            calibration = planner.calibration
        keys = {
            query_key(req.resolve(), calibration)
            for req in (
                _request(),
                _request(batch_sizes=(16,)),
                _request(methods=()),
                _request(objective="pareto"),
            )
        }
        assert len(keys) == 4


class TestHttp:
    def _roundtrip(self, planner, requests):
        """Serve on an ephemeral port; fire raw HTTP/1.1 requests."""

        async def run():
            server = await start_planner_server(planner, port=0)
            port = server.sockets[0].getsockname()[1]
            responses = []
            async with server:
                for raw in requests:
                    reader, writer = await asyncio.open_connection(
                        "127.0.0.1", port
                    )
                    writer.write(raw)
                    await writer.drain()
                    payload = await reader.read()
                    writer.close()
                    await writer.wait_closed()
                    head, _, body = payload.partition(b"\r\n\r\n")
                    status = int(head.split()[1])
                    responses.append((status, json.loads(body)))
            return responses

        return asyncio.run(run())

    @staticmethod
    def _post_plan(request):
        body = json.dumps(request_to_json(request)).encode()
        return (
            b"POST /plan HTTP/1.1\r\nHost: t\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
        )

    def test_plan_presets_healthz_and_errors(self, tmp_path):
        request = _request()
        with Planner(tmp_path) as planner:
            _plan(planner, request)  # populate one cell

        # Fresh planner: the preset index sees the solved cell.
        with Planner(tmp_path) as planner:
            assert planner.preset_frontiers() == {
                f"{MODEL}/{CLUSTER}": {BF: [8]}
            }
            responses = self._roundtrip(
                planner,
                [
                    self._post_plan(request),
                    b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n",
                    b"GET /presets HTTP/1.1\r\nHost: t\r\n\r\n",
                    b"GET /nope HTTP/1.1\r\nHost: t\r\n\r\n",
                    b"POST /plan HTTP/1.1\r\nHost: t\r\n"
                    b"Content-Length: 9\r\n\r\nnot json!",
                ],
            )
        (plan_s, plan_b), (hz_s, hz_b), (pre_s, pre_b), (nf_s, _), (bad_s, bad_b) = (
            responses
        )
        assert plan_s == 200
        assert plan_b["cells"][0]["source"] == "exact"
        assert plan_b["query_key"] == query_key(
            request.resolve(), planner.calibration
        )
        assert (hz_s, hz_b) == (200, {"status": "ok", "cells_indexed": 1})
        assert pre_s == 200 and pre_b == {f"{MODEL}/{CLUSTER}": {BF: [8]}}
        assert nf_s == 404
        assert bad_s == 400 and "error" in bad_b

    def test_unknown_model_maps_to_400(self, tmp_path):
        with Planner(tmp_path) as planner:
            body = json.dumps(
                {"model": "nope", "cluster": CLUSTER, "batch_sizes": [8]}
            ).encode()
            raw = (
                b"POST /plan HTTP/1.1\r\nHost: t\r\nContent-Length: "
                + str(len(body)).encode()
                + b"\r\n\r\n"
                + body
            )
            ((status, payload),) = self._roundtrip(planner, [raw])
        assert status == 400
        assert "unknown model" in payload["error"]
