"""Tests for the schedule-to-instruction-stream lowering."""

from __future__ import annotations

import pytest

from repro.core.schedules.base import build_schedule
from repro.hardware.cluster import DGX1_CLUSTER_64
from repro.models.presets import MODEL_6_6B
from repro.parallel.config import ParallelConfig, ScheduleKind, Sharding
from repro.sim.cost import CostModel
from repro.sim.implementation import MEGATRON_LM, OUR_IMPLEMENTATION
from repro.sim.program import COMPUTE, DP, PP, build_program


def make_streams(impl=OUR_IMPLEMENTATION, **kw):
    base = dict(
        n_dp=2, n_pp=2, n_tp=2, microbatch_size=1, n_microbatches=4,
        n_loop=2, schedule=ScheduleKind.BREADTH_FIRST,
    )
    base.update(kw)
    config = ParallelConfig(**base)
    cost = CostModel(
        spec=MODEL_6_6B, config=config, cluster=DGX1_CLUSTER_64,
        implementation=impl,
    )
    schedule = build_schedule(
        config.schedule, config.n_pp, config.n_microbatches, config.n_loop
    )
    return build_program(cost, schedule), config, schedule


def uids_by_prefix(queue, prefix):
    return [i for i in queue if i.uid[0].startswith(prefix)]


class TestStreamStructure:
    def test_ours_has_three_streams_per_rank(self):
        streams, config, _ = make_streams()
        for rank in range(config.n_pp):
            assert (rank, COMPUTE) in streams
            assert (rank, PP) in streams
            assert (rank, DP) in streams

    def test_megatron_has_only_compute_stream(self):
        streams, config, _ = make_streams(
            impl=MEGATRON_LM, schedule=ScheduleKind.DEPTH_FIRST,
            sharding=Sharding.NONE,
        )
        assert set(streams) == {(r, COMPUTE) for r in range(config.n_pp)}

    def test_compute_ops_complete(self):
        streams, config, schedule = make_streams()
        n_compute = sum(
            sum(1 for i in q if i.uid[0] in ("F", "B"))
            for k, q in streams.items() if k[1] == COMPUTE
        )
        assert n_compute == schedule.total_ops

    def test_optimizer_last_on_compute(self):
        streams, config, _ = make_streams()
        for rank in range(config.n_pp):
            assert streams[(rank, COMPUTE)][-1].uid == ("OPT", rank)

    def test_megatron_serial_dp_block(self):
        streams, config, _ = make_streams(
            impl=MEGATRON_LM, schedule=ScheduleKind.ONE_F_ONE_B, n_loop=1,
        )
        q = streams[(0, COMPUTE)]
        assert q[-2].uid == ("DPALL", 0)
        assert q[-1].uid == ("OPT", 0)


class TestFullShardingRepetition:
    def test_breadth_first_gathers_once_per_stage(self):
        streams, config, _ = make_streams(sharding=Sharding.FULL)
        # 2 stages per rank, forward+backward gathers, head+bulk pairs
        # only for multi-layer stages (6.6B: 32 layers / 4 stages = 8).
        dp_q = streams[(0, DP)]
        gf_heads = [i for i in dp_q if i.uid[0] == "GFH"]
        gb_heads = [i for i in dp_q if i.uid[0] == "GBH"]
        assert len(gf_heads) == 2
        assert len(gb_heads) == 2

    def test_gpipe_gathers_once_per_microbatch(self):
        streams, config, _ = make_streams(
            sharding=Sharding.FULL, schedule=ScheduleKind.GPIPE, n_loop=1,
        )
        dp_q = streams[(0, DP)]
        gf_heads = [i for i in dp_q if i.uid[0] == "GFH"]
        assert len(gf_heads) == config.n_microbatches

    def test_depth_first_like_accumulation_on_one_device(self):
        streams, config, _ = make_streams(
            n_pp=1, n_tp=8, n_dp=4, sharding=Sharding.FULL,
            schedule=ScheduleKind.ONE_F_ONE_B, n_loop=1, n_microbatches=4,
        )
        dp_q = streams[(0, DP)]
        # Per-microbatch repetition: 4 forward + 4 backward gathers.
        assert len([i for i in dp_q if i.uid[0] == "GFH"]) == 4
        assert len([i for i in dp_q if i.uid[0] == "GBH"]) == 4

    def test_dp0_has_no_gathers(self):
        streams, _, _ = make_streams(sharding=Sharding.NONE)
        dp_q = streams[(0, DP)]
        assert not [i for i in dp_q if i.uid[0].startswith("G")]


class TestReductions:
    def test_one_reduce_per_stage_dp0(self):
        streams, config, _ = make_streams(sharding=Sharding.NONE)
        dp_q = streams[(0, DP)]
        reds = [i for i in dp_q if i.uid[0].startswith("RED")]
        # Two stages on rank 0, each split into bulk+head.
        assert len(reds) == 4

    def test_dp0_gpipe_reduces_once_per_stage_not_per_microbatch(self):
        # Regression: with DP0 gradients accumulate locally, so the
        # per-micro-batch DP_FS repetition key must not leak into the
        # reduction emission (it once inflated GPipe's DP traffic 16x).
        streams, config, _ = make_streams(
            sharding=Sharding.NONE, schedule=ScheduleKind.GPIPE, n_loop=1,
            n_microbatches=8,
        )
        dp_q = streams[(0, DP)]
        red_heads = [i for i in dp_q if i.uid[0] == "REDH"]
        assert len(red_heads) == 1  # one stage on rank 0 -> one reduction

    def test_post_gather_only_for_partial(self):
        streams, _, _ = make_streams(
            sharding=Sharding.PARTIAL, schedule=ScheduleKind.GPIPE, n_loop=1,
        )
        dp_q = streams[(0, DP)]
        assert dp_q[-1].uid == ("POST", 0)
        streams0, _, _ = make_streams(sharding=Sharding.NONE)
        assert streams0[(0, DP)][-1].uid[0] != "POST"

    def test_reduce_head_depends_on_last_backward(self):
        streams, config, schedule = make_streams(sharding=Sharding.NONE)
        dp_q = streams[(0, DP)]
        head = next(i for i in dp_q if i.uid[0] == "REDH")
        # Head must depend on a backward op of the same stage.
        assert any(dep[0] == "B" for dep in head.deps)


class TestTransfers:
    def test_ours_transfers_on_pp_stream(self):
        streams, config, schedule = make_streams()
        pp_q = streams[(0, PP)]
        assert all(i.uid[0] in ("XA", "XG") for i in pp_q)
        # Stage 0 and 2 on rank 0: XA from both (stage 3 is last, no XA
        # from it), XG from stage 2 only (stage 0 is first).
        xa = [i for i in pp_q if i.uid[0] == "XA"]
        xg = [i for i in pp_q if i.uid[0] == "XG"]
        assert len(xa) == 2 * config.n_microbatches
        assert len(xg) == config.n_microbatches

    def test_megatron_transfers_inline(self):
        streams, config, _ = make_streams(
            impl=MEGATRON_LM, schedule=ScheduleKind.ONE_F_ONE_B, n_loop=1,
            sharding=Sharding.NONE,
        )
        q = streams[(0, COMPUTE)]
        assert any(i.uid[0] == "XA" for i in q)

    def test_no_transfer_for_single_stage(self):
        streams, _, _ = make_streams(
            n_pp=1, n_tp=8, n_dp=4, schedule=ScheduleKind.BREADTH_FIRST,
            n_loop=1,
        )
        assert not [i for i in streams[(0, PP)] if True]
