"""Tests for the in-process collectives, including algebraic properties."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.runtime.collectives import (
    STATS,
    all_gather,
    all_reduce,
    broadcast,
    reduce_scatter,
)


class TestAllReduce:
    def test_mean(self):
        out = all_reduce([np.array([2.0]), np.array([4.0])])
        np.testing.assert_allclose(out[0], 3.0)
        np.testing.assert_allclose(out[1], 3.0)

    def test_sum(self):
        out = all_reduce([np.array([2.0]), np.array([4.0])], op="sum")
        np.testing.assert_allclose(out[0], 6.0)

    def test_single_rank_identity(self):
        out = all_reduce([np.array([5.0, 6.0])])
        np.testing.assert_allclose(out[0], [5.0, 6.0])

    def test_results_independent_copies(self):
        out = all_reduce([np.zeros(2), np.zeros(2)])
        out[0][0] = 99
        assert out[1][0] == 0

    def test_bad_op(self):
        with pytest.raises(ValueError, match="op"):
            all_reduce([np.zeros(1)], op="max")

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            all_reduce([])


class TestReduceScatterGather:
    def test_scatter_then_gather_is_reduce(self):
        arrays = [np.arange(6.0), np.arange(6.0) * 2]
        shards = reduce_scatter(arrays, op="sum")
        full = all_gather(shards)
        np.testing.assert_allclose(full[0], np.arange(6.0) * 3)

    def test_uneven_shards(self):
        arrays = [np.arange(5.0), np.arange(5.0)]
        shards = reduce_scatter(arrays)
        assert [s.size for s in shards] == [3, 2]

    def test_requires_flat(self):
        with pytest.raises(ValueError, match="flat"):
            reduce_scatter([np.zeros((2, 2))])

    def test_broadcast(self):
        out = broadcast(np.array([1.0, 2.0]), 3)
        assert len(out) == 3
        np.testing.assert_allclose(out[2], [1.0, 2.0])

    def test_broadcast_invalid(self):
        with pytest.raises(ValueError):
            broadcast(np.zeros(1), 0)


class TestStats:
    def test_volume_accounting(self):
        STATS.reset()
        all_reduce([np.zeros(10), np.zeros(10)])
        assert STATS.counts["all_reduce"] == 1
        assert STATS.elements["all_reduce"] == 20.0
        STATS.reset()
        assert not STATS.counts


@settings(max_examples=40, deadline=None)
@given(
    data=hnp.arrays(
        np.float64,
        st.integers(2, 24),
        elements=st.floats(-100, 100, allow_nan=False),
    ),
    n_ranks=st.integers(1, 5),
)
def test_scatter_gather_roundtrip_property(data, n_ranks):
    """all_gather(reduce_scatter(x * n)) == sum of replicas, any sizes."""
    arrays = [data.copy() for _ in range(n_ranks)]
    shards = reduce_scatter(arrays, op="mean")
    full = all_gather(shards)
    for rank_result in full:
        np.testing.assert_allclose(rank_result, data, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    n_ranks=st.integers(1, 5),
    size=st.integers(1, 32),
    seed=st.integers(0, 1000),
)
def test_all_reduce_mean_property(n_ranks, size, seed):
    rng = np.random.default_rng(seed)
    arrays = [rng.normal(size=size) for _ in range(n_ranks)]
    expected = np.mean(arrays, axis=0)
    out = all_reduce(arrays)
    for result in out:
        np.testing.assert_allclose(result, expected, atol=1e-12)
