"""The centerpiece: every schedule x sharding x grid trains identically
to the serial reference."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.ops import backward, forward
from repro.core.schedules.base import Schedule, build_schedule
from repro.parallel.config import ScheduleKind, Sharding
from repro.runtime.executor import PipelineTrainer
from repro.runtime.model import ModelConfig
from repro.runtime.reference import ReferenceTrainer

CFG = ModelConfig(vocab=32, hidden=16, n_heads=2, n_layers=4, seq=6)
STEPS = 3
TOL = 1e-8


@pytest.fixture(scope="module")
def reference():
    tokens, targets = ReferenceTrainer.make_batch(CFG, batch=8)
    trainer = ReferenceTrainer(CFG)
    losses = [trainer.step(tokens, targets) for _ in range(STEPS)]
    return tokens, targets, losses, trainer.named_params()


EQUIVALENCE_CASES = [
    # (kind, n_pp, n_mb, n_loop, n_dp, sharding)
    (ScheduleKind.GPIPE, 2, 4, 1, 1, Sharding.NONE),
    (ScheduleKind.GPIPE, 4, 8, 1, 1, Sharding.NONE),
    (ScheduleKind.ONE_F_ONE_B, 2, 4, 1, 1, Sharding.NONE),
    (ScheduleKind.ONE_F_ONE_B, 4, 8, 1, 1, Sharding.NONE),
    (ScheduleKind.BREADTH_FIRST, 2, 4, 2, 1, Sharding.NONE),
    (ScheduleKind.BREADTH_FIRST, 2, 8, 2, 1, Sharding.NONE),
    (ScheduleKind.BREADTH_FIRST, 4, 8, 1, 1, Sharding.NONE),
    (ScheduleKind.DEPTH_FIRST, 2, 4, 2, 1, Sharding.NONE),
    (ScheduleKind.DEPTH_FIRST, 4, 4, 1, 1, Sharding.NONE),
    (ScheduleKind.GPIPE, 2, 2, 1, 2, Sharding.NONE),
    (ScheduleKind.GPIPE, 2, 2, 1, 2, Sharding.PARTIAL),
    (ScheduleKind.BREADTH_FIRST, 2, 2, 2, 2, Sharding.FULL),
    (ScheduleKind.ONE_F_ONE_B, 2, 2, 1, 2, Sharding.FULL),
    (ScheduleKind.BREADTH_FIRST, 1, 4, 1, 2, Sharding.FULL),
    (ScheduleKind.ONE_F_ONE_B, 1, 2, 1, 4, Sharding.PARTIAL),
    (ScheduleKind.BREADTH_FIRST, 1, 1, 1, 8, Sharding.NONE),
]


@pytest.mark.parametrize(
    "kind,n_pp,n_mb,n_loop,n_dp,sharding",
    EQUIVALENCE_CASES,
    ids=[
        f"{k.value}-pp{p}-mb{m}-loop{l}-dp{d}-{s.value}"
        for k, p, m, l, d, s in EQUIVALENCE_CASES
    ],
)
def test_schedule_equivalence(reference, kind, n_pp, n_mb, n_loop, n_dp, sharding):
    """Trained weights match serial SGD for every configuration."""
    tokens, targets, ref_losses, ref_params = reference
    schedule = build_schedule(kind, n_pp, n_mb, n_loop)
    trainer = PipelineTrainer(CFG, schedule, n_dp=n_dp, sharding=sharding)
    losses = [trainer.step(tokens, targets).loss for _ in range(STEPS)]
    for got, want in zip(losses, ref_losses):
        assert got == pytest.approx(want, abs=TOL)
    params = trainer.named_params()
    for name, want in ref_params.items():
        np.testing.assert_allclose(
            params[name], want, atol=TOL, err_msg=f"parameter {name}"
        )


class TestMemorySignatures:
    def test_1f1b_in_flight_cap(self):
        tokens, targets = ReferenceTrainer.make_batch(CFG, batch=8)
        schedule = build_schedule(ScheduleKind.ONE_F_ONE_B, 4, 8)
        trainer = PipelineTrainer(CFG, schedule)
        result = trainer.step(tokens, targets)
        # Rank r holds at most N_PP - r live micro-batches (Table 4.1).
        for rank, peak in result.peak_in_flight.items():
            assert peak <= 4 - rank

    def test_gpipe_holds_all_microbatches(self):
        tokens, targets = ReferenceTrainer.make_batch(CFG, batch=8)
        schedule = build_schedule(ScheduleKind.GPIPE, 2, 8)
        trainer = PipelineTrainer(CFG, schedule)
        result = trainer.step(tokens, targets)
        assert result.peak_in_flight[0] == 8


class TestDpfsRepetition:
    """Eqs. (24)-(26) measured on the real runtime."""

    def _gathers(self, kind, n_pp, n_mb, n_loop):
        tokens, targets = ReferenceTrainer.make_batch(CFG, batch=2 * n_mb)
        schedule = build_schedule(kind, n_pp, n_mb, n_loop)
        trainer = PipelineTrainer(
            CFG, schedule, n_dp=2, sharding=Sharding.FULL
        )
        return trainer.step(tokens, targets).gather_events

    def test_breadth_first_once_per_stage_pass(self):
        # 4 stages x (fwd + bwd) x 2 replicas.
        assert self._gathers(ScheduleKind.BREADTH_FIRST, 2, 4, 2) == 16

    def test_non_looped_once_per_microbatch(self):
        # 2 stages x 4 micro-batches x (fwd + bwd) x 2 replicas.
        assert self._gathers(ScheduleKind.GPIPE, 2, 4, 1) == 32

    def test_depth_first_once_per_sequence(self):
        # 2 stages x 2 sequences x (fwd + bwd) x 2 replicas.
        assert self._gathers(ScheduleKind.DEPTH_FIRST, 2, 4, 1) == 16

    def test_collective_volume_recorded(self):
        tokens, targets = ReferenceTrainer.make_batch(CFG, batch=4)
        schedule = build_schedule(ScheduleKind.BREADTH_FIRST, 2, 2, 1)
        trainer = PipelineTrainer(CFG, schedule, n_dp=2, sharding=Sharding.FULL)
        result = trainer.step(tokens, targets)
        assert result.collective_elements["reduce_scatter"] > 0
        assert result.collective_elements["all_gather"] > 0


class TestExecutorErrors:
    def test_bad_batch_split(self):
        tokens, targets = ReferenceTrainer.make_batch(CFG, batch=6)
        schedule = build_schedule(ScheduleKind.GPIPE, 2, 4)
        trainer = PipelineTrainer(CFG, schedule)
        with pytest.raises(ValueError, match="divisible"):
            trainer.step(tokens, targets)

    def test_sharding_requires_dp(self):
        schedule = build_schedule(ScheduleKind.GPIPE, 2, 2)
        with pytest.raises(ValueError, match="n_dp"):
            PipelineTrainer(CFG, schedule, n_dp=1, sharding=Sharding.FULL)

    def test_corrupt_schedule_deadlocks(self):
        # Backward scheduled before its own forward on the same rank is
        # caught by the executor (the op never becomes ready).
        orders = (
            (backward(0, 0), forward(0, 0)),
            (forward(0, 1), backward(0, 1)),
        )
        bad = Schedule(
            kind=ScheduleKind.GPIPE, n_pp=2, n_microbatches=1, n_loop=1,
            device_orders=orders,
        )
        tokens, targets = ReferenceTrainer.make_batch(CFG, batch=1)
        trainer = PipelineTrainer(CFG, bad)
        with pytest.raises(RuntimeError, match="deadlock"):
            trainer.step(tokens, targets)


class TestTrainingMakesProgress:
    def test_loss_decreases(self):
        tokens, targets = ReferenceTrainer.make_batch(CFG, batch=8)
        schedule = build_schedule(ScheduleKind.BREADTH_FIRST, 2, 4, 2)
        trainer = PipelineTrainer(CFG, schedule)
        losses = [trainer.step(tokens, targets).loss for _ in range(8)]
        assert losses[-1] < losses[0] * 0.8

    def test_float32_close_to_float64(self):
        cfg32 = ModelConfig(
            vocab=32, hidden=16, n_heads=2, n_layers=4, seq=6, dtype="float32"
        )
        tokens, targets = ReferenceTrainer.make_batch(cfg32, batch=8)
        schedule = build_schedule(ScheduleKind.BREADTH_FIRST, 2, 4, 2)
        lo = PipelineTrainer(cfg32, schedule).step(tokens, targets).loss
        hi = PipelineTrainer(CFG, schedule).step(tokens, targets).loss
        assert lo == pytest.approx(hi, rel=1e-3)
