"""Gradient checks for every NumPy layer against finite differences."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.layers import (
    CrossEntropyLoss,
    Embedding,
    Gelu,
    LayerNorm,
    Linear,
    SelfAttention,
    TransformerLayer,
)

RNG = np.random.default_rng(7)
EPS = 1e-6


def numerical_grad(f, x, eps=EPS):
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        up = f()
        flat[i] = orig - eps
        down = f()
        flat[i] = orig
        gflat[i] = (up - down) / (2 * eps)
    return grad


def check_input_grad(module, x, atol=1e-7):
    """Compare analytic input gradient with finite differences of sum(y)."""
    y = module.forward(x.copy(), 0)
    dx = module.backward(np.ones_like(y), 0)

    def loss():
        out = module.forward(x, 1)
        module._cache.pop(1, None)
        return float(out.sum())

    expected = numerical_grad(loss, x)
    np.testing.assert_allclose(dx, expected, atol=atol)


def check_param_grads(module, x, atol=1e-6):
    module.zero_grads()
    y = module.forward(x.copy(), 0)
    module.backward(np.ones_like(y), 0)
    analytic = {k: v.copy() for k, v in module.grads.items()}

    for name, param in module.params.items():
        def loss():
            out = module.forward(x, 1)
            module._cache.pop(1, None)
            return float(out.sum())

        expected = numerical_grad(loss, param)
        np.testing.assert_allclose(
            analytic[name], expected, atol=atol,
            err_msg=f"parameter {name}",
        )


class TestLinear:
    def test_input_grad(self):
        check_input_grad(Linear(RNG, 5, 3), RNG.normal(size=(2, 4, 5)))

    def test_param_grads(self):
        check_param_grads(Linear(RNG, 4, 3), RNG.normal(size=(2, 3, 4)))

    def test_shape(self):
        lin = Linear(RNG, 4, 7)
        assert lin.forward(RNG.normal(size=(2, 3, 4))).shape == (2, 3, 7)


class TestLayerNorm:
    def test_input_grad(self):
        check_input_grad(LayerNorm(6), RNG.normal(size=(2, 3, 6)), atol=1e-6)

    def test_param_grads(self):
        check_param_grads(LayerNorm(5), RNG.normal(size=(2, 2, 5)))

    def test_output_normalized(self):
        ln = LayerNorm(16)
        y = ln.forward(RNG.normal(size=(2, 4, 16)) * 10 + 3)
        assert abs(float(y.mean())) < 1e-10
        assert float(y.var(axis=-1).mean()) == pytest.approx(1.0, rel=1e-3)


class TestGelu:
    def test_input_grad(self):
        check_input_grad(Gelu(), RNG.normal(size=(2, 3, 4)), atol=1e-6)

    def test_values(self):
        g = Gelu()
        y = g.forward(np.array([[[-10.0, 0.0, 10.0]]]))
        assert y[0, 0, 0] == pytest.approx(0.0, abs=1e-4)
        assert y[0, 0, 1] == 0.0
        assert y[0, 0, 2] == pytest.approx(10.0, abs=1e-4)


class TestSelfAttention:
    def test_input_grad(self):
        attn = SelfAttention(RNG, 8, 2)
        check_input_grad(attn, RNG.normal(size=(2, 3, 8)), atol=1e-6)

    def test_param_grads(self):
        attn = SelfAttention(RNG, 4, 2)
        check_param_grads(attn, RNG.normal(size=(1, 3, 4)), atol=1e-6)

    def test_head_mismatch_rejected(self):
        with pytest.raises(ValueError, match="divisible"):
            SelfAttention(RNG, 7, 2)


class TestTransformerLayer:
    def test_input_grad(self):
        layer = TransformerLayer(RNG, 8, 2)
        check_input_grad(layer, RNG.normal(size=(1, 3, 8)), atol=1e-5)

    def test_grads_collected_under_prefixed_names(self):
        layer = TransformerLayer(RNG, 8, 2)
        layer.zero_grads()
        x = RNG.normal(size=(1, 2, 8))
        y = layer.forward(x, 0)
        layer.backward(np.ones_like(y), 0)
        assert "attn.Wqkv" in layer.grads
        assert "fc1.W" in layer.grads

    def test_multiple_in_flight_microbatches(self):
        layer = TransformerLayer(RNG, 8, 2)
        layer.zero_grads()
        xs = [RNG.normal(size=(1, 2, 8)) for _ in range(3)]
        ys = [layer.forward(x, mb) for mb, x in enumerate(xs)]
        assert layer.live_microbatches == 3
        # Backward out of order must still work (each uses its own cache).
        for mb in (1, 0, 2):
            layer.backward(np.ones_like(ys[mb]), mb)
        assert layer.live_microbatches == 0

    def test_backward_without_forward_raises(self):
        layer = TransformerLayer(RNG, 8, 2)
        with pytest.raises(RuntimeError, match="no cached forward"):
            layer.ln1.backward(np.ones((1, 2, 8)), 99)


class TestEmbedding:
    def test_gather(self):
        emb = Embedding(RNG, 10, 4)
        tokens = np.array([[1, 2], [3, 1]])
        y = emb.forward(tokens)
        np.testing.assert_array_equal(y[0, 0], emb.params["E"][1])

    def test_scatter_add_grad(self):
        emb = Embedding(RNG, 5, 3)
        emb.zero_grads()
        tokens = np.array([[1, 1]])
        y = emb.forward(tokens, 0)
        emb.backward(np.ones_like(y), 0)
        # Token 1 used twice: gradient accumulates.
        np.testing.assert_allclose(emb.grads["E"][1], 2.0)
        np.testing.assert_allclose(emb.grads["E"][0], 0.0)


class TestCrossEntropy:
    def test_loss_value_uniform(self):
        loss = CrossEntropyLoss()
        logits = np.zeros((1, 2, 4))
        targets = np.array([[0, 3]])
        assert loss.forward(logits, targets) == pytest.approx(np.log(4))

    def test_grad_sums_to_zero(self):
        loss = CrossEntropyLoss()
        logits = RNG.normal(size=(2, 3, 5))
        targets = RNG.integers(0, 5, size=(2, 3))
        loss.forward(logits, targets, 0)
        grad = loss.backward(0)
        np.testing.assert_allclose(grad.sum(axis=-1), 0.0, atol=1e-12)

    def test_grad_matches_numerical(self):
        loss = CrossEntropyLoss()
        logits = RNG.normal(size=(1, 2, 4))
        targets = np.array([[1, 2]])
        loss.forward(logits.copy(), targets, 0)
        analytic = loss.backward(0)

        def f():
            return loss.forward(logits, targets, 1)

        expected = numerical_grad(f, logits)
        np.testing.assert_allclose(analytic, expected, atol=1e-6)
