"""Tests for stage partitioning and canonical parameter naming."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.placement import Placement
from repro.runtime.model import ModelConfig, build_stages


CFG = ModelConfig(vocab=16, hidden=8, n_heads=2, n_layers=4, seq=4)


class TestPartitioning:
    def test_param_count_conserved_across_placements(self):
        totals = []
        for n_pp, n_loop in [(1, 1), (2, 1), (2, 2), (4, 1)]:
            stages = build_stages(CFG, Placement(CFG.n_layers, n_pp, n_loop))
            totals.append(sum(s.n_params() for s in stages))
        assert len(set(totals)) == 1

    def test_identical_init_across_placements(self):
        single = build_stages(CFG, Placement(4, 1, 1))[0].named_params()
        split = {}
        for stage in build_stages(CFG, Placement(4, 2, 2)):
            split.update(stage.named_params())
        assert set(single) == set(split)
        for name in single:
            np.testing.assert_array_equal(single[name], split[name])

    def test_different_seed_different_weights(self):
        a = build_stages(CFG, Placement(4, 1, 1), seed=0)[0].named_params()
        b = build_stages(CFG, Placement(4, 1, 1), seed=1)[0].named_params()
        assert any(not np.array_equal(a[k], b[k]) for k in a)

    def test_embedding_on_first_head_on_last(self):
        stages = build_stages(CFG, Placement(4, 2, 2))
        assert stages[0].embedding is not None
        assert stages[0].head is None
        assert stages[3].head is not None
        assert stages[3].embedding is None
        assert all(s.embedding is None for s in stages[1:])


class TestForwardEquivalence:
    def test_stagewise_forward_matches_full_model(self):
        rng = np.random.default_rng(3)
        tokens = rng.integers(0, CFG.vocab, size=(2, CFG.seq))
        targets = rng.integers(0, CFG.vocab, size=(2, CFG.seq))

        full = build_stages(CFG, Placement(4, 1, 1))[0]
        full.forward(0, tokens, targets=targets)
        loss_full = full.pop_loss(0)

        stages = build_stages(CFG, Placement(4, 2, 2))
        h = tokens
        for i, stage in enumerate(stages):
            out = stage.forward(
                0, h, targets=targets if i == len(stages) - 1 else None
            )
            h = out
        loss_split = stages[-1].pop_loss(0)
        assert loss_split == pytest.approx(loss_full, rel=1e-12)

    def test_set_params_roundtrip(self):
        stage = build_stages(CFG, Placement(4, 1, 1))[0]
        params = {k: v + 1.0 for k, v in stage.named_params().items()}
        stage.set_params(params)
        after = stage.named_params()
        for name in params:
            np.testing.assert_array_equal(after[name], params[name])

    def test_set_params_keeps_children_in_sync(self):
        # TransformerLayer exposes both flat and child views; both must
        # see the update (the forward uses the child arrays).
        stage = build_stages(CFG, Placement(4, 1, 1))[0]
        params = {k: v * 2.0 for k, v in stage.named_params().items()}
        stage.set_params(params)
        layer = stage.layers[0]
        np.testing.assert_array_equal(
            layer.attn.params["Wqkv"], layer.params["attn.Wqkv"]
        )


class TestErrors:
    def test_last_stage_needs_targets(self):
        stage = build_stages(CFG, Placement(4, 1, 1))[0]
        with pytest.raises(ValueError, match="targets"):
            stage.forward(0, np.zeros((1, 4), dtype=int))

    def test_mid_stage_needs_gradient(self):
        stages = build_stages(CFG, Placement(4, 2, 1))
        with pytest.raises(ValueError, match="incoming gradient"):
            stages[0].backward(0, None)

    def test_invalid_model_config(self):
        with pytest.raises(ValueError, match="divisible"):
            ModelConfig(hidden=10, n_heads=3)
        with pytest.raises(ValueError, match="n_layers"):
            ModelConfig(n_layers=0)
