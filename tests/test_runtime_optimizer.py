"""Tests for the flat-vector Adam with master weights."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.optimizer import Adam, AdamConfig


class TestAdam:
    def test_first_step_matches_hand_computation(self):
        cfg = AdamConfig(lr=0.1)
        opt = Adam(cfg, np.array([1.0]))
        new = opt.step(np.array([2.0]))
        # After bias correction the first step is -lr * sign(g) (eps aside).
        assert new[0] == pytest.approx(1.0 - 0.1, rel=1e-6)

    def test_deterministic(self):
        a = Adam(AdamConfig(), np.ones(4))
        b = Adam(AdamConfig(), np.ones(4))
        g = np.arange(4.0)
        np.testing.assert_array_equal(a.step(g), b.step(g))

    def test_shape_mismatch(self):
        opt = Adam(AdamConfig(), np.ones(4))
        with pytest.raises(ValueError, match="shape"):
            opt.step(np.ones(5))

    def test_master_dtype(self):
        opt = Adam(AdamConfig(master_dtype="float64"), np.ones(2, dtype=np.float32))
        assert opt.master.dtype == np.float64

    def test_zero_grad_still_decays_nothing(self):
        opt = Adam(AdamConfig(), np.ones(3))
        new = opt.step(np.zeros(3))
        np.testing.assert_allclose(new, 1.0)

    def test_invalid_lr(self):
        with pytest.raises(ValueError, match="lr"):
            AdamConfig(lr=0.0)

    def test_invalid_betas(self):
        with pytest.raises(ValueError, match="betas"):
            AdamConfig(beta1=1.0)

    def test_n_params(self):
        assert Adam(AdamConfig(), np.ones(7)).n_params == 7

    def test_converges_on_quadratic(self):
        opt = Adam(AdamConfig(lr=0.05), np.array([5.0]))
        x = opt.master
        for _ in range(500):
            x = opt.step(2 * x)  # gradient of x^2
        assert abs(x[0]) < 0.05
