"""Tests for the four schedule generators — the paper's core objects."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analytical.bubble import bubble_fraction
from repro.core.ops import OpKind, backward, forward
from repro.core.schedules.base import (
    Schedule,
    build_schedule,
    dpfs_repetition_key,
    max_in_flight_closed,
    schedule_for,
)
from repro.core.validation import validate_schedule
from repro.parallel.config import ParallelConfig, ScheduleKind


def _kinds_of(order):
    return [(op.kind, op.microbatch, op.stage) for op in order]


class TestGPipe:
    def test_order_all_forward_then_backward(self):
        s = build_schedule(ScheduleKind.GPIPE, 2, 3)
        order = s.ops_of(0)
        assert _kinds_of(order) == [
            (OpKind.FORWARD, 0, 0), (OpKind.FORWARD, 1, 0), (OpKind.FORWARD, 2, 0),
            (OpKind.BACKWARD, 0, 0), (OpKind.BACKWARD, 1, 0), (OpKind.BACKWARD, 2, 0),
        ]

    def test_in_flight_is_nmb(self):
        s = build_schedule(ScheduleKind.GPIPE, 4, 8)
        assert s.peak_in_flight() == 8


class TestOneFOneB:
    def test_warmup_counts(self):
        s = build_schedule(ScheduleKind.ONE_F_ONE_B, 4, 8)
        for rank in range(4):
            order = s.ops_of(rank)
            warmup = 0
            for op in order:
                if op.kind is OpKind.BACKWARD:
                    break
                warmup += 1
            assert warmup == 4 - rank  # N_PP - rank - 1 warmups + first steady F

    def test_in_flight_cap_is_npp_minus_rank(self):
        s = build_schedule(ScheduleKind.ONE_F_ONE_B, 4, 16)
        for rank in range(4):
            assert s.max_in_flight(rank) == 4 - rank

    def test_small_nmb(self):
        s = build_schedule(ScheduleKind.ONE_F_ONE_B, 4, 2)
        validate_schedule(s)

    def test_degenerates_to_alternating_on_one_device(self):
        s = build_schedule(ScheduleKind.ONE_F_ONE_B, 1, 3)
        kinds = [op.kind for op in s.ops_of(0)]
        assert kinds == [OpKind.FORWARD, OpKind.BACKWARD] * 3


class TestDepthFirst:
    def test_requires_multiple_of_npp(self):
        with pytest.raises(ValueError, match="N_mb % N_PP"):
            build_schedule(ScheduleKind.DEPTH_FIRST, 4, 6, 2)

    def test_chunk_major_warmup(self):
        # rank 0, N_PP=4, N_loop=2, N_mb=8: first four forwards are chunk 0
        # (stage 0) mbs 0-3, then chunk 1 (stage 4) mbs 0-3.
        s = build_schedule(ScheduleKind.DEPTH_FIRST, 4, 8, 2)
        order = s.ops_of(0)
        head = _kinds_of(order)[:8]
        assert head[:4] == [(OpKind.FORWARD, mb, 0) for mb in range(4)]
        assert head[4:8] == [(OpKind.FORWARD, mb, 4) for mb in range(4)]

    def test_in_flight_near_table_41_cap(self):
        # Table 4.1: depth-first holds ~N_layers + N_PP - 1 checkpoints;
        # in stage-microbatch units that's N_stages + N_PP - 1.
        s = build_schedule(ScheduleKind.DEPTH_FIRST, 4, 16, 4)
        cap = s.n_stages + s.n_pp - 1
        assert s.peak_in_flight() <= cap

    def test_nmb_equals_npp_special_case(self):
        s = build_schedule(ScheduleKind.DEPTH_FIRST, 4, 4, 2)
        validate_schedule(s)


class TestBreadthFirst:
    def test_stage_major_order(self):
        s = build_schedule(ScheduleKind.BREADTH_FIRST, 2, 3, 2)
        order = s.ops_of(0)
        assert _kinds_of(order) == [
            (OpKind.FORWARD, 0, 0), (OpKind.FORWARD, 1, 0), (OpKind.FORWARD, 2, 0),
            (OpKind.FORWARD, 0, 2), (OpKind.FORWARD, 1, 2), (OpKind.FORWARD, 2, 2),
            (OpKind.BACKWARD, 0, 2), (OpKind.BACKWARD, 1, 2), (OpKind.BACKWARD, 2, 2),
            (OpKind.BACKWARD, 0, 0), (OpKind.BACKWARD, 1, 0), (OpKind.BACKWARD, 2, 0),
        ]

    def test_backward_reverse_chunk_order(self):
        s = build_schedule(ScheduleKind.BREADTH_FIRST, 2, 2, 3)
        backwards = [op for op in s.ops_of(0) if op.kind is OpKind.BACKWARD]
        stages = [op.stage for op in backwards]
        assert stages == [4, 4, 2, 2, 0, 0]

    def test_appendix_c_accumulation(self):
        # N_PP = 1: all forwards then all backwards (Figure 9c/9d).
        s = build_schedule(ScheduleKind.BREADTH_FIRST, 1, 4, 1)
        kinds = [op.kind for op in s.ops_of(0)]
        assert kinds == [OpKind.FORWARD] * 4 + [OpKind.BACKWARD] * 4


class TestBubbleFormulas:
    @pytest.mark.parametrize("n_pp,n_mb,n_loop", [
        (4, 8, 1), (4, 8, 4), (8, 8, 8), (2, 6, 3), (8, 16, 2),
    ])
    def test_logical_bubble_matches_eq_4_and_9(self, n_pp, n_mb, n_loop):
        kind = ScheduleKind.BREADTH_FIRST if n_loop > 1 else ScheduleKind.GPIPE
        s = build_schedule(kind, n_pp, n_mb, n_loop)
        analysis = validate_schedule(s)
        assert analysis.bubble_fraction == pytest.approx(
            bubble_fraction(n_pp, n_mb, n_loop), rel=1e-9
        )

    def test_depth_first_same_bubble_as_breadth_first(self):
        bf = validate_schedule(build_schedule(ScheduleKind.BREADTH_FIRST, 4, 8, 4))
        df = validate_schedule(build_schedule(ScheduleKind.DEPTH_FIRST, 4, 8, 4))
        assert bf.makespan == pytest.approx(df.makespan)

    def test_looping_shrinks_bubble(self):
        non = validate_schedule(build_schedule(ScheduleKind.GPIPE, 8, 8))
        looped = validate_schedule(
            build_schedule(ScheduleKind.BREADTH_FIRST, 8, 8, 8)
        )
        assert looped.bubble_fraction < non.bubble_fraction / 4


@settings(max_examples=60, deadline=None)
@given(
    kind=st.sampled_from(list(ScheduleKind)),
    n_pp=st.integers(1, 6),
    n_mb_factor=st.integers(1, 5),
    n_loop=st.integers(1, 4),
)
def test_every_schedule_validates(kind, n_pp, n_mb_factor, n_loop):
    """Property: all generated schedules are complete and deadlock-free."""
    if not kind.is_looped:
        n_loop = 1
    n_mb = (
        n_mb_factor * n_pp
        if kind in (ScheduleKind.DEPTH_FIRST, ScheduleKind.HYBRID)
        else n_mb_factor + n_pp - 1
    )
    sequence_size = n_pp if kind is ScheduleKind.HYBRID else None
    schedule = build_schedule(kind, n_pp, n_mb, n_loop, sequence_size)
    analysis = validate_schedule(schedule)
    assert analysis.makespan > 0
    assert schedule.total_ops == 2 * n_mb * n_pp * n_loop


@settings(max_examples=150, deadline=None)
@given(
    kind=st.sampled_from(list(ScheduleKind)),
    n_pp=st.integers(1, 8),
    n_mb_factor=st.integers(1, 6),
    n_loop=st.integers(1, 4),
    seq_factor=st.integers(1, 3),
)
def test_max_in_flight_closed_matches_materialized(
    kind, n_pp, n_mb_factor, n_loop, seq_factor
):
    """Property: the closed form equals the materialized per-rank peak.

    This is what licenses :func:`repro.analytical.memory.memory_model` to
    price candidates without building a schedule (and transitively the
    search's byte-identity with ``batch_eval`` on or off).
    """
    if not kind.is_looped:
        n_loop = 1
    sequence_size = None
    if kind is ScheduleKind.HYBRID:
        sequence_size = n_pp * seq_factor
        n_mb = sequence_size * n_mb_factor
    elif kind is ScheduleKind.DEPTH_FIRST:
        n_mb = n_pp * n_mb_factor
    else:
        n_mb = n_mb_factor + n_pp - 1
    schedule = build_schedule(kind, n_pp, n_mb, n_loop, sequence_size)
    peaks = [
        max_in_flight_closed(kind, rank, n_pp, n_mb, n_loop, sequence_size)
        for rank in range(n_pp)
    ]
    for rank in range(n_pp):
        assert schedule.max_in_flight(rank) == peaks[rank]
    # Non-increasing in rank: earlier ranks hold more outstanding
    # micro-batches.  memory_model's closed-form path relies on this to
    # evaluate only the first rank of each parameter-profile group.
    assert all(peaks[r] >= peaks[r + 1] for r in range(n_pp - 1))


class TestScheduleContainer:
    def test_schedule_for_config(self):
        config = ParallelConfig(
            n_dp=1, n_pp=2, n_tp=1, microbatch_size=1, n_microbatches=4,
            n_loop=2, schedule=ScheduleKind.BREADTH_FIRST,
        )
        s = schedule_for(config)
        assert s.n_stages == 4

    def test_wrong_stream_count_rejected(self):
        with pytest.raises(ValueError, match="device streams"):
            Schedule(ScheduleKind.GPIPE, 2, 1, 1, ((forward(0, 0),),))

    def test_invalid_args(self):
        with pytest.raises(ValueError, match="n_pp"):
            build_schedule(ScheduleKind.GPIPE, 0, 1)
        with pytest.raises(ValueError, match="n_loop == 1"):
            build_schedule(ScheduleKind.GPIPE, 2, 4, 2)

    def test_all_ops_iterates_everything(self):
        s = build_schedule(ScheduleKind.GPIPE, 2, 2)
        assert len(list(s.all_ops())) == s.total_ops


class TestRepetitionKey:
    def test_breadth_first_single_group(self):
        assert dpfs_repetition_key(ScheduleKind.BREADTH_FIRST, 7, 4) == 0

    def test_depth_first_sequences(self):
        keys = [dpfs_repetition_key(ScheduleKind.DEPTH_FIRST, mb, 4) for mb in range(8)]
        assert keys == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_non_looped_per_microbatch(self):
        assert dpfs_repetition_key(ScheduleKind.GPIPE, 5, 4) == 5


class TestOps:
    def test_op_str(self):
        assert str(forward(1, 2)) == "F(mb=1, s=2)"
        assert str(backward(0, 0)) == "B(mb=0, s=0)"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            forward(-1, 0)
        with pytest.raises(ValueError):
            backward(0, -1)

    def test_is_forward(self):
        assert forward(0, 0).is_forward
        assert not backward(0, 0).is_forward
