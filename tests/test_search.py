"""Tests for the Appendix E configuration search."""

from __future__ import annotations

import pytest

import repro.search.grid as grid
from repro.hardware.cluster import DGX1_CLUSTER_64
from repro.models.presets import MODEL_6_6B, MODEL_52B
from repro.parallel.config import Method, ScheduleKind, Sharding
from repro.search.grid import best_configuration
from repro.search.space import configuration_space
from repro.implementations import MEGATRON_LM, OUR_IMPLEMENTATION


class TestSpace:
    def test_batch_size_respected(self):
        for config, _ in configuration_space(
            Method.BREADTH_FIRST, MODEL_52B, DGX1_CLUSTER_64, 32
        ):
            assert config.batch_size == 32

    def test_depth_first_space_uses_megatron(self):
        pairs = list(configuration_space(
            Method.DEPTH_FIRST, MODEL_52B, DGX1_CLUSTER_64, 64
        ))
        assert pairs
        for config, impl in pairs:
            assert impl is MEGATRON_LM
            assert config.schedule is ScheduleKind.DEPTH_FIRST
            assert config.sharding is Sharding.NONE
            assert config.n_microbatches % config.n_pp == 0
            assert config.n_loop >= 2

    def test_breadth_first_space_loops(self):
        for config, impl in configuration_space(
            Method.BREADTH_FIRST, MODEL_52B, DGX1_CLUSTER_64, 64
        ):
            assert impl is OUR_IMPLEMENTATION
            assert config.n_loop >= 2
            assert config.sharding in (Sharding.NONE, Sharding.FULL)

    def test_non_looped_space_has_both_impls(self):
        impls = {
            impl.name
            for _, impl in configuration_space(
                Method.NON_LOOPED, MODEL_52B, DGX1_CLUSTER_64, 64
            )
        }
        assert impls == {"Ours", "Megatron-LM"}

    def test_no_pipeline_space(self):
        for config, _ in configuration_space(
            Method.NO_PIPELINE, MODEL_52B, DGX1_CLUSTER_64, 64
        ):
            assert config.n_pp == 1
            assert config.schedule is ScheduleKind.BREADTH_FIRST

    def test_sharding_requires_dp(self):
        for config, _ in configuration_space(
            Method.BREADTH_FIRST, MODEL_52B, DGX1_CLUSTER_64, 8
        ):
            if config.n_dp == 1:
                assert config.sharding is Sharding.NONE

    def test_grid_fits_cluster(self):
        for config, _ in configuration_space(
            Method.BREADTH_FIRST, MODEL_52B, DGX1_CLUSTER_64, 128
        ):
            assert config.n_gpus <= 64
            assert config.n_tp <= 8

    def test_invalid_batch(self):
        with pytest.raises(ValueError, match="batch_size"):
            list(configuration_space(
                Method.BREADTH_FIRST, MODEL_52B, DGX1_CLUSTER_64, 0
            ))


class TestBestConfiguration:
    def test_52b_small_batch_ordering(self):
        # Figure 7a at beta = 1/8: breadth-first must win, no-pipeline
        # must lose badly (the headline result).
        results = {
            method: best_configuration(MODEL_52B, DGX1_CLUSTER_64, method, 8)
            for method in Method
        }
        tputs = {
            m: r.best.throughput_per_gpu for m, r in results.items() if r.best
        }
        assert tputs[Method.BREADTH_FIRST] > tputs[Method.DEPTH_FIRST]
        assert tputs[Method.BREADTH_FIRST] > tputs[Method.NON_LOOPED]
        assert tputs[Method.BREADTH_FIRST] > 1.5 * tputs[Method.NO_PIPELINE]

    def test_improvement_factor_near_beta_min(self):
        # Paper: 43% over depth-first, 53% over non-looped at beta ~ 1/8.
        # Allow a generous band around those factors.
        bf = best_configuration(MODEL_52B, DGX1_CLUSTER_64, Method.BREADTH_FIRST, 8)
        df = best_configuration(MODEL_52B, DGX1_CLUSTER_64, Method.DEPTH_FIRST, 8)
        nl = best_configuration(MODEL_52B, DGX1_CLUSTER_64, Method.NON_LOOPED, 8)
        gain_df = bf.best.throughput_per_gpu / df.best.throughput_per_gpu
        gain_nl = bf.best.throughput_per_gpu / nl.best.throughput_per_gpu
        assert 1.1 < gain_df < 1.9
        assert 1.2 < gain_nl < 2.2

    def test_memory_filter_excludes_oversized(self):
        outcome = best_configuration(
            MODEL_52B, DGX1_CLUSTER_64, Method.NO_PIPELINE, 8
        )
        assert outcome.n_excluded > 0
        if outcome.best is not None:
            assert outcome.best.memory.total < 32 * 2**30

    def test_winning_config_valid(self):
        outcome = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, Method.BREADTH_FIRST, 32
        )
        best = outcome.best
        assert best is not None
        assert best.config.batch_size == 32
        best.config.validate_against(MODEL_6_6B.n_layers)


class TestPruneBeforeSimulate:
    """Section 5.3 protocol: exclude by predicted memory, then simulate."""

    def test_excluded_configs_never_simulated(self, monkeypatch):
        simulated = []
        real_simulate = grid.simulate

        def counting_simulate(spec, config, cluster, **kwargs):
            simulated.append(config)
            return real_simulate(spec, config, cluster, **kwargs)

        monkeypatch.setattr(grid, "simulate", counting_simulate)
        outcome = best_configuration(
            MODEL_52B, DGX1_CLUSTER_64, Method.NO_PIPELINE, 8
        )
        assert outcome.n_excluded > 0
        # Only the configurations that passed the memory filter were
        # simulated — excluded never reach the engine.
        assert len(simulated) == outcome.n_tried
        limit = DGX1_CLUSTER_64.gpu.memory_bytes * grid.MEMORY_HEADROOM
        for config in simulated:
            impl = OUR_IMPLEMENTATION
            schedule = grid.cached_schedule(
                config.schedule, config.n_pp, config.n_microbatches,
                config.n_loop,
            )
            memory = grid.memory_model(MODEL_52B, config, impl, schedule)
            assert memory.total <= limit

    def test_tried_and_excluded_partition_the_space(self):
        outcome = best_configuration(
            MODEL_52B, DGX1_CLUSTER_64, Method.DEPTH_FIRST, 8
        )
        space = [
            config
            for config, _ in configuration_space(
                Method.DEPTH_FIRST, MODEL_52B, DGX1_CLUSTER_64, 8
            )
            if config.n_stages <= MODEL_52B.n_layers
        ]
        assert outcome.n_tried + outcome.n_excluded == len(space)
        assert outcome.n_tried > 0

    def test_all_excluded_reports_no_best(self, monkeypatch):
        # With no usable memory every candidate is excluded up front and
        # the cell reports OOM without running a single simulation.
        monkeypatch.setattr(grid, "MEMORY_HEADROOM", 1e-9)
        monkeypatch.setattr(
            grid, "simulate", lambda *a, **k: pytest.fail("simulated")
        )
        outcome = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, Method.NO_PIPELINE, 8
        )
        assert outcome.best is None
        assert outcome.n_tried == 0
        assert outcome.n_excluded > 0
