"""Tests for the Appendix E configuration search."""

from __future__ import annotations

import pytest

import repro.search.grid as grid
from repro.hardware.cluster import DGX1_CLUSTER_64, DGX1_CLUSTER_64_ETHERNET
from repro.models.presets import MODEL_6_6B, MODEL_52B
from repro.parallel.config import Method, ScheduleKind, Sharding
from repro.search.cell import SearchSettings
from repro.search.grid import best_configuration
from repro.search.service.serialize import outcome_to_json, result_to_json
from repro.search.space import configuration_space
from repro.implementations import MEGATRON_LM, OUR_IMPLEMENTATION


class TestSpace:
    def test_batch_size_respected(self):
        for config, _ in configuration_space(
            Method.BREADTH_FIRST, MODEL_52B, DGX1_CLUSTER_64, 32
        ):
            assert config.batch_size == 32

    def test_depth_first_space_uses_megatron(self):
        pairs = list(configuration_space(
            Method.DEPTH_FIRST, MODEL_52B, DGX1_CLUSTER_64, 64
        ))
        assert pairs
        for config, impl in pairs:
            assert impl is MEGATRON_LM
            assert config.schedule is ScheduleKind.DEPTH_FIRST
            assert config.sharding is Sharding.NONE
            assert config.n_microbatches % config.n_pp == 0
            assert config.n_loop >= 2

    def test_breadth_first_space_loops(self):
        for config, impl in configuration_space(
            Method.BREADTH_FIRST, MODEL_52B, DGX1_CLUSTER_64, 64
        ):
            assert impl is OUR_IMPLEMENTATION
            assert config.n_loop >= 2
            assert config.sharding in (Sharding.NONE, Sharding.FULL)

    def test_non_looped_space_has_both_impls(self):
        impls = {
            impl.name
            for _, impl in configuration_space(
                Method.NON_LOOPED, MODEL_52B, DGX1_CLUSTER_64, 64
            )
        }
        assert impls == {"Ours", "Megatron-LM"}

    def test_no_pipeline_space(self):
        for config, _ in configuration_space(
            Method.NO_PIPELINE, MODEL_52B, DGX1_CLUSTER_64, 64
        ):
            assert config.n_pp == 1
            assert config.schedule is ScheduleKind.BREADTH_FIRST

    def test_sharding_requires_dp(self):
        for config, _ in configuration_space(
            Method.BREADTH_FIRST, MODEL_52B, DGX1_CLUSTER_64, 8
        ):
            if config.n_dp == 1:
                assert config.sharding is Sharding.NONE

    def test_grid_fits_cluster(self):
        for config, _ in configuration_space(
            Method.BREADTH_FIRST, MODEL_52B, DGX1_CLUSTER_64, 128
        ):
            assert config.n_gpus <= 64
            assert config.n_tp <= 8

    def test_invalid_batch(self):
        with pytest.raises(ValueError, match="batch_size"):
            list(configuration_space(
                Method.BREADTH_FIRST, MODEL_52B, DGX1_CLUSTER_64, 0
            ))


class TestBestConfiguration:
    def test_52b_small_batch_ordering(self):
        # Figure 7a at beta = 1/8: breadth-first must win, no-pipeline
        # must lose badly (the headline result).
        results = {
            method: best_configuration(MODEL_52B, DGX1_CLUSTER_64, method, 8)
            for method in Method
        }
        tputs = {
            m: r.best.throughput_per_gpu for m, r in results.items() if r.best
        }
        assert tputs[Method.BREADTH_FIRST] > tputs[Method.DEPTH_FIRST]
        assert tputs[Method.BREADTH_FIRST] > tputs[Method.NON_LOOPED]
        assert tputs[Method.BREADTH_FIRST] > 1.5 * tputs[Method.NO_PIPELINE]

    def test_improvement_factor_near_beta_min(self):
        # Paper: 43% over depth-first, 53% over non-looped at beta ~ 1/8.
        # Allow a generous band around those factors.
        bf = best_configuration(MODEL_52B, DGX1_CLUSTER_64, Method.BREADTH_FIRST, 8)
        df = best_configuration(MODEL_52B, DGX1_CLUSTER_64, Method.DEPTH_FIRST, 8)
        nl = best_configuration(MODEL_52B, DGX1_CLUSTER_64, Method.NON_LOOPED, 8)
        gain_df = bf.best.throughput_per_gpu / df.best.throughput_per_gpu
        gain_nl = bf.best.throughput_per_gpu / nl.best.throughput_per_gpu
        assert 1.1 < gain_df < 1.9
        assert 1.2 < gain_nl < 2.2

    def test_memory_filter_excludes_oversized(self):
        outcome = best_configuration(
            MODEL_52B, DGX1_CLUSTER_64, Method.NO_PIPELINE, 8
        )
        assert outcome.n_excluded > 0
        if outcome.best is not None:
            assert outcome.best.memory.total < 32 * 2**30

    def test_winning_config_valid(self):
        outcome = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, Method.BREADTH_FIRST, 32
        )
        best = outcome.best
        assert best is not None
        assert best.config.batch_size == 32
        best.config.validate_against(MODEL_6_6B.n_layers)


class TestPruneBeforeSimulate:
    """Section 5.3 protocol: exclude by predicted memory, then simulate."""

    def test_excluded_configs_never_simulated(self, monkeypatch):
        simulated = []
        real_simulate = grid.simulate

        def counting_simulate(spec, config, cluster, **kwargs):
            simulated.append(config)
            return real_simulate(spec, config, cluster, **kwargs)

        monkeypatch.setattr(grid, "simulate", counting_simulate)
        outcome = best_configuration(
            MODEL_52B, DGX1_CLUSTER_64, Method.NO_PIPELINE, 8
        )
        assert outcome.n_excluded > 0
        # Only the configurations that passed the memory filter were
        # simulated — excluded never reach the engine.
        assert len(simulated) == outcome.n_tried
        limit = DGX1_CLUSTER_64.gpu.memory_bytes * grid.MEMORY_HEADROOM
        for config in simulated:
            impl = OUR_IMPLEMENTATION
            schedule = grid.cached_schedule(
                config.schedule, config.n_pp, config.n_microbatches,
                config.n_loop,
            )
            memory = grid.memory_model(MODEL_52B, config, impl, schedule)
            assert memory.total <= limit

    def test_tried_excluded_pruned_partition_the_space(self):
        # The accounting contract: every enumerated candidate lands in
        # exactly one of the three counters — no silent skips (the old
        # n_stages > n_layers drop is now excluded from enumeration).
        outcome = best_configuration(
            MODEL_52B, DGX1_CLUSTER_64, Method.DEPTH_FIRST, 8
        )
        space = list(configuration_space(
            Method.DEPTH_FIRST, MODEL_52B, DGX1_CLUSTER_64, 8
        ))
        assert (
            outcome.n_tried + outcome.n_excluded + outcome.n_pruned
            == len(space)
        )
        assert outcome.n_tried > 0

    def test_all_excluded_reports_no_best(self, monkeypatch):
        # With no usable memory every candidate is excluded up front and
        # the cell reports OOM without running a single simulation.
        monkeypatch.setattr(grid, "MEMORY_HEADROOM", 1e-9)
        monkeypatch.setattr(
            grid, "simulate", lambda *a, **k: pytest.fail("simulated")
        )
        outcome = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, Method.NO_PIPELINE, 8
        )
        assert outcome.best is None
        assert outcome.n_tried == 0
        assert outcome.n_excluded > 0


class TestEnumerationCompleteness:
    """Satellite of the pipeline refactor: no silent candidate drops."""

    def test_space_never_yields_more_stages_than_layers(self):
        # The old best_configuration silently skipped n_stages > n_layers
        # candidates outside every counter; the space now excludes them.
        for method in Method:
            for config, _ in configuration_space(
                method, MODEL_6_6B, DGX1_CLUSTER_64, 64
            ):
                assert config.n_stages <= MODEL_6_6B.n_layers

    def test_deep_non_looped_pipelines_are_not_enumerated(self):
        # 6.6B has 32 layers; a 64-way non-looped pipeline (one stage per
        # rank) cannot exist.  It used to be enumerated and dropped.
        pps = {
            config.n_pp
            for config, _ in configuration_space(
                Method.NON_LOOPED, MODEL_6_6B, DGX1_CLUSTER_64, 64
            )
        }
        assert pps
        assert max(pps) <= MODEL_6_6B.n_layers

    @pytest.mark.parametrize("method", list(Method))
    def test_accounting_sums_to_enumerated_space(self, method):
        outcome = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, method, 64
        )
        space = list(configuration_space(
            method, MODEL_6_6B, DGX1_CLUSTER_64, 64
        ))
        assert (
            outcome.n_tried + outcome.n_excluded + outcome.n_pruned
            == len(space)
        )


class TestBoundPruning:
    """Branch-and-bound invariants: same winner, strictly less work."""

    CELLS = [
        (MODEL_52B, DGX1_CLUSTER_64, Method.BREADTH_FIRST, 8),
        (MODEL_52B, DGX1_CLUSTER_64, Method.DEPTH_FIRST, 64),
        (MODEL_6_6B, DGX1_CLUSTER_64, Method.NON_LOOPED, 32),
        (MODEL_6_6B, DGX1_CLUSTER_64_ETHERNET, Method.BREADTH_FIRST, 64),
        (MODEL_6_6B, DGX1_CLUSTER_64, Method.NO_PIPELINE, 64),
    ]

    @pytest.mark.parametrize(
        "spec,cluster,method,batch", CELLS,
        ids=[f"{m.value}-B{b}" for _s, _c, m, b in CELLS],
    )
    def test_byte_identical_winner_with_and_without_pruning(
        self, spec, cluster, method, batch
    ):
        pruned = best_configuration(spec, cluster, method, batch)
        full = best_configuration(
            spec, cluster, method, batch,
            settings=SearchSettings(bound_pruning=False),
        )
        # The serialized winner (the checkpoint payload) must match byte
        # for byte — the acceptance criterion for the pruning stage.
        assert result_to_json(pruned.best) == result_to_json(full.best)
        assert full.n_pruned == 0
        assert pruned.n_excluded == full.n_excluded
        assert pruned.n_tried + pruned.n_pruned == full.n_tried

    def test_pruning_skips_work_on_a_paper_cell(self):
        # Figure 7a cell: the bound must actually fire.
        outcome = best_configuration(
            MODEL_52B, DGX1_CLUSTER_64, Method.BREADTH_FIRST, 8
        )
        assert outcome.n_pruned > 0

    def test_pruned_outcome_counts_serialize(self):
        outcome = best_configuration(
            MODEL_52B, DGX1_CLUSTER_64, Method.DEPTH_FIRST, 8
        )
        data = outcome_to_json(outcome)
        assert data["n_pruned"] == outcome.n_pruned


class TestHybridAxis:
    def test_hybrid_candidates_present_when_enabled(self):
        space = list(configuration_space(
            Method.BREADTH_FIRST, MODEL_6_6B, DGX1_CLUSTER_64, 32,
            include_hybrid=True,
        ))
        hybrids = [
            c for c, _ in space if c.schedule is ScheduleKind.HYBRID
        ]
        assert hybrids
        for config in hybrids:
            assert config.n_pp <= config.sequence_size <= config.n_microbatches
            assert config.n_microbatches % config.sequence_size == 0
        # The axis widens the space strictly.
        baseline = list(configuration_space(
            Method.BREADTH_FIRST, MODEL_6_6B, DGX1_CLUSTER_64, 32,
        ))
        assert len(space) == len(baseline) + len(hybrids)

    def test_hybrid_axis_off_by_default(self):
        for config, _ in configuration_space(
            Method.BREADTH_FIRST, MODEL_6_6B, DGX1_CLUSTER_64, 32
        ):
            assert config.schedule is not ScheduleKind.HYBRID

    def test_search_with_hybrid_axis_end_to_end(self):
        outcome = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, Method.BREADTH_FIRST, 32,
            settings=SearchSettings(include_hybrid=True),
        )
        assert outcome.best is not None
        space = list(configuration_space(
            Method.BREADTH_FIRST, MODEL_6_6B, DGX1_CLUSTER_64, 32,
            include_hybrid=True,
        ))
        assert (
            outcome.n_tried + outcome.n_excluded + outcome.n_pruned
            == len(space)
        )
        # The hybrid space is a superset: its winner cannot be worse.
        baseline = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, Method.BREADTH_FIRST, 32
        )
        assert (
            outcome.best.throughput_per_gpu
            >= baseline.best.throughput_per_gpu
        )
