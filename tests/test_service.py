"""Tests for the sweep service: serialization, checkpoints, backends."""

from __future__ import annotations

import json

import pytest

from repro.hardware.cluster import DGX1_CLUSTER_64, DGX1_CLUSTER_64_ETHERNET
from repro.models.presets import MODEL_6_6B
from repro.parallel.config import Method
from repro.search import grid as grid_module
from repro.search.grid import SearchOutcome, best_configuration
from repro.search.objective import DEFAULT_OBJECTIVE, ParetoFrontObjective
from repro.search.service import (
    CheckpointStore,
    MultiprocessingExecutor,
    SweepCell,
    SweepOptions,
    cell_key,
    outcome_from_json,
    outcome_to_json,
    run_sweep,
)
from repro.search.service.progress import ProgressReporter
from repro.search.service.serialize import (
    context_from_json,
    context_to_json,
    result_from_json,
    result_to_json,
)
from repro.sim.calibration import DEFAULT_CALIBRATION, Calibration
from repro.sim.simulator import SimulationResult, simulate

#: Small, fast cells (6.6B no-pipeline spaces have ~2-20 candidates).
CELLS = [
    SweepCell(Method.NO_PIPELINE, 8),
    SweepCell(Method.NO_PIPELINE, 64),
    SweepCell(Method.DEPTH_FIRST, 8),
]


@pytest.fixture(scope="module")
def outcomes():
    return [
        best_configuration(MODEL_6_6B, DGX1_CLUSTER_64, c.method, c.batch_size)
        for c in CELLS
    ]


class TestSerialization:
    def test_outcome_round_trip_is_exact(self, outcomes):
        for outcome in outcomes:
            data = json.loads(json.dumps(outcome_to_json(outcome)))
            assert outcome_from_json(data) == outcome

    def test_none_best_round_trips(self):
        outcome = SearchOutcome(
            method=Method.BREADTH_FIRST, batch_size=4, best=None,
            n_tried=0, n_excluded=7,
        )
        assert outcome_from_json(outcome_to_json(outcome)) == outcome

    def test_result_with_timeline_round_trips(self, outcomes):
        best = outcomes[0].best
        result = simulate(
            MODEL_6_6B, best.config, DGX1_CLUSTER_64, record_events=True
        )
        assert len(result.timeline) > 0
        data = json.loads(json.dumps(result_to_json(result)))
        assert result_from_json(data) == result

    def test_context_round_trips(self):
        spec, cluster, calibration = context_from_json(
            json.loads(json.dumps(
                context_to_json(
                    MODEL_6_6B, DGX1_CLUSTER_64_ETHERNET, DEFAULT_CALIBRATION
                )
            ))
        )
        assert spec == MODEL_6_6B
        assert cluster == DGX1_CLUSTER_64_ETHERNET
        assert calibration == DEFAULT_CALIBRATION

    def test_malformed_outcome_raises(self):
        with pytest.raises((KeyError, TypeError, ValueError)):
            outcome_from_json({"method": "No pipeline"})
        with pytest.raises((KeyError, TypeError, ValueError)):
            outcome_from_json(
                {"method": "not-a-method", "batch_size": 8, "best": None,
                 "n_tried": 0, "n_excluded": 0}
            )


class TestCellKey:
    def args(self, **over):
        base = dict(
            spec=MODEL_6_6B,
            cluster=DGX1_CLUSTER_64,
            calibration=DEFAULT_CALIBRATION,
            cell=CELLS[0],
        )
        base.update(over)
        return base

    def test_deterministic(self):
        key = cell_key(**self.args())
        assert key == cell_key(**self.args())
        assert len(key) == 20
        int(key, 16)  # hex

    def test_sensitive_to_every_input(self):
        base = cell_key(**self.args())
        assert base != cell_key(**self.args(cell=SweepCell(Method.NO_PIPELINE, 16)))
        assert base != cell_key(
            **self.args(cell=SweepCell(Method.BREADTH_FIRST, 8))
        )
        assert base != cell_key(**self.args(cluster=DGX1_CLUSTER_64_ETHERNET))
        assert base != cell_key(
            **self.args(calibration=Calibration(fixed_step_overhead=1.0))
        )


class TestCheckpointStore:
    def test_store_load_round_trip(self, tmp_path, outcomes):
        store = CheckpointStore(tmp_path)
        store.store("aaaa", outcomes[0])
        assert store.load("aaaa") == outcomes[0]
        assert "aaaa" in store
        assert store.keys() == ["aaaa"]

    def test_missing_is_none(self, tmp_path):
        assert CheckpointStore(tmp_path).load("feed") is None

    def test_bytes_are_canonical(self, tmp_path, outcomes):
        store = CheckpointStore(tmp_path)
        path = store.store("aaaa", outcomes[0])
        assert path.read_bytes() == store.payload_bytes("aaaa", outcomes[0])

    @pytest.mark.parametrize(
        "payload",
        [
            b"not json at all {",
            b"[1, 2, 3]",
            b'{"format": 999, "key": "dead", "outcome": {}}',
            b'{"format": 1, "key": "dead"}',
            b'{"format": 1, "key": "dead", "outcome": {"method": "x"}}',
        ],
        ids=["garbage", "wrong-type", "wrong-version", "no-outcome",
             "bad-outcome"],
    )
    def test_corrupt_file_rejected_cleanly(self, tmp_path, payload):
        store = CheckpointStore(tmp_path)
        store.path_for("dead").write_bytes(payload)
        with pytest.warns(RuntimeWarning, match="corrupt checkpoint"):
            assert store.load("dead") is None

    def test_truncated_checkpoint_rejected(self, tmp_path, outcomes):
        store = CheckpointStore(tmp_path)
        path = store.store("aaaa", outcomes[0])
        path.write_bytes(path.read_bytes()[:-30])
        with pytest.warns(RuntimeWarning):
            assert store.load("aaaa") is None

    def test_key_mismatch_rejected(self, tmp_path, outcomes):
        # A checkpoint copied/renamed to the wrong key must not be trusted.
        store = CheckpointStore(tmp_path)
        store.path_for("bbbb").write_bytes(
            store.payload_bytes("aaaa", outcomes[0])
        )
        with pytest.warns(RuntimeWarning, match="key mismatch"):
            assert store.load("bbbb") is None


class TestRunSweep:
    def test_serial_matches_direct_search(self, outcomes):
        got = run_sweep(
            MODEL_6_6B, DGX1_CLUSTER_64, CELLS,
            options=SweepOptions(backend="serial"),
        )
        assert got == outcomes

    def test_duplicate_cells_searched_once(self, monkeypatch, outcomes):
        calls = []
        real = best_configuration

        def counting(spec, cluster, method, batch, calibration, settings):
            calls.append((method, batch))
            return real(spec, cluster, method, batch, calibration, settings)

        monkeypatch.setattr(
            "repro.search.service.executors.best_configuration", counting
        )
        got = run_sweep(
            MODEL_6_6B, DGX1_CLUSTER_64, [CELLS[0], CELLS[1], CELLS[0]],
            options=SweepOptions(backend="serial"),
        )
        assert len(calls) == 2
        assert got == [outcomes[0], outcomes[1], outcomes[0]]

    def test_checkpoints_written_and_resume_skips_search(
        self, tmp_path, monkeypatch, outcomes
    ):
        opts = SweepOptions(backend="serial", checkpoint_dir=tmp_path)
        first = run_sweep(MODEL_6_6B, DGX1_CLUSTER_64, CELLS, options=opts)
        assert first == outcomes
        assert len(CheckpointStore(tmp_path)) == len(CELLS)

        def boom(*args, **kwargs):  # resume must not search anything
            raise AssertionError("searched a checkpointed cell")

        monkeypatch.setattr(
            "repro.search.service.executors.best_configuration", boom
        )
        resumed = run_sweep(
            MODEL_6_6B, DGX1_CLUSTER_64, CELLS,
            options=opts, resume=True,
        )
        assert resumed == first

    def test_resume_recomputes_corrupted_cell(self, tmp_path, outcomes):
        opts = SweepOptions(backend="serial", checkpoint_dir=tmp_path)
        run_sweep(MODEL_6_6B, DGX1_CLUSTER_64, CELLS, options=opts)
        key = cell_key(
            MODEL_6_6B, DGX1_CLUSTER_64, DEFAULT_CALIBRATION, CELLS[1]
        )
        CheckpointStore(tmp_path).path_for(key).write_bytes(b"{broken")
        with pytest.warns(RuntimeWarning):
            resumed = run_sweep(
                MODEL_6_6B, DGX1_CLUSTER_64, CELLS, options=opts, resume=True
            )
        assert resumed == outcomes

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_sweep(
                MODEL_6_6B, DGX1_CLUSTER_64, CELLS,
                options=SweepOptions(backend="dask"),
            )

    def test_file_queue_requires_checkpoint_dir(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_sweep(
                MODEL_6_6B, DGX1_CLUSTER_64, CELLS,
                options=SweepOptions(backend="file-queue"),
            )

    def test_empty_cells(self):
        assert run_sweep(MODEL_6_6B, DGX1_CLUSTER_64, []) == []

    def test_options_calibration_is_used_when_not_passed_explicitly(self):
        """``SweepOptions.calibration`` (the --calibration plumbing) must
        reach the actual search: a huge fixed step overhead visibly
        drags every cell's throughput."""
        slow = Calibration(fixed_step_overhead=1.0)
        via_options = run_sweep(
            MODEL_6_6B, DGX1_CLUSTER_64, CELLS[:1],
            options=SweepOptions(backend="serial", calibration=slow),
        )
        explicit = run_sweep(
            MODEL_6_6B, DGX1_CLUSTER_64, CELLS[:1],
            calibration=slow,
            options=SweepOptions(backend="serial"),
        )
        assert via_options == explicit
        default = run_sweep(
            MODEL_6_6B, DGX1_CLUSTER_64, CELLS[:1],
            options=SweepOptions(backend="serial"),
        )
        assert (
            via_options[0].best.throughput_per_gpu
            < default[0].best.throughput_per_gpu
        )

    def test_explicit_calibration_overrides_options(self):
        slow = Calibration(fixed_step_overhead=1.0)
        got = run_sweep(
            MODEL_6_6B, DGX1_CLUSTER_64, CELLS[:1],
            calibration=DEFAULT_CALIBRATION,
            options=SweepOptions(backend="serial", calibration=slow),
        )
        reference = run_sweep(
            MODEL_6_6B, DGX1_CLUSTER_64, CELLS[:1],
            options=SweepOptions(backend="serial"),
        )
        assert got == reference


class TestCellTiming:
    """Per-cell wall-clock sidecars and longest-cell-first scheduling."""

    def test_sweep_records_timing_sidecars(self, tmp_path):
        opts = SweepOptions(backend="serial", checkpoint_dir=tmp_path)
        run_sweep(MODEL_6_6B, DGX1_CLUSTER_64, CELLS, options=opts)
        store = CheckpointStore(tmp_path)
        for cell in CELLS:
            key = cell_key(
                MODEL_6_6B, DGX1_CLUSTER_64, DEFAULT_CALIBRATION, cell
            )
            seconds = store.load_timing(key)
            assert seconds is not None and seconds > 0

    def test_timing_sidecar_round_trip_and_corruption(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.store_timing("abc123", 1.25)
        assert store.load_timing("abc123") == 1.25
        assert store.load_timing("missing") is None
        store.timing_path_for("bad999").write_bytes(b"{nope")
        assert store.load_timing("bad999") is None  # silently advisory
        with pytest.raises(ValueError):
            store.store_timing("abc123", -1.0)

    def test_timing_files_do_not_pollute_checkpoint_keys(
        self, tmp_path, outcomes
    ):
        store = CheckpointStore(tmp_path)
        store.store("deadbeef", outcomes[0])
        store.store_timing("deadbeef", 2.0)
        assert store.keys() == ["deadbeef"]

    def test_recorded_timings_schedule_longest_first(self, tmp_path):
        from repro.search.service.service import _order_longest_first

        store = CheckpointStore(tmp_path)
        tasks = [
            (0, "aaa", SweepCell(Method.NO_PIPELINE, 8)),
            (1, "bbb", SweepCell(Method.NO_PIPELINE, 64)),
            (2, "ccc", SweepCell(Method.DEPTH_FIRST, 16)),
        ]
        store.store_timing("aaa", 0.5)
        store.store_timing("ccc", 9.0)
        ordered, _estimates = _order_longest_first(store, tasks, DEFAULT_OBJECTIVE)
        # Recorded cells rank by their measured seconds; the unrecorded
        # B=64 cell is estimated from the steepest recorded rate
        # (9.0s / 16 samples), putting its ~36s ahead of both — a big
        # new cell must not be scheduled after small known ones.
        # Ordering is family-clustered: cells of one method stay
        # consecutive (they share pricing families), so the small
        # NO_PIPELINE cell rides with its giant sibling ahead of the
        # DEPTH_FIRST group.
        assert [key for _i, key, _c in ordered] == ["bbb", "aaa", "ccc"]

    def test_unknown_cells_order_by_batch_size(self, tmp_path):
        from repro.search.service.service import _order_longest_first

        store = CheckpointStore(tmp_path)
        tasks = [
            (0, "aaa", SweepCell(Method.NO_PIPELINE, 8)),
            (1, "bbb", SweepCell(Method.NO_PIPELINE, 64)),
        ]
        ordered, _estimates = _order_longest_first(store, tasks, DEFAULT_OBJECTIVE)
        assert [key for _i, key, _c in ordered] == ["bbb", "aaa"]

    def test_estimates_scale_with_objective_cost_factor(self, tmp_path):
        from repro.search.service.service import _order_longest_first

        store = CheckpointStore(tmp_path)
        tasks = [
            (0, "aaa", SweepCell(Method.NO_PIPELINE, 16)),
            (1, "bbb", SweepCell(Method.NO_PIPELINE, 64)),
        ]
        # Cold store: a Pareto cell simulates ~2x the candidates, so its
        # seconds estimate (and the ETA built on it) doubles.
        _o, flat = _order_longest_first(store, tasks, DEFAULT_OBJECTIVE)
        _o, pareto = _order_longest_first(store, tasks, ParetoFrontObjective())
        factor = ParetoFrontObjective.simulate_cost_factor
        assert factor == 2.0
        assert pareto["bbb"] == flat["bbb"] * factor

        # With a recorded sidecar the measured seconds win verbatim, and
        # the unrecorded cell's estimate is objective-independent: the
        # factor divides out of the recorded rate and multiplies back
        # into the estimate, keeping sidecar-derived scales comparable
        # across objectives.
        store.store_timing("aaa", 8.0)
        _o, flat = _order_longest_first(store, tasks, DEFAULT_OBJECTIVE)
        _o, pareto = _order_longest_first(store, tasks, ParetoFrontObjective())
        assert flat["aaa"] == pareto["aaa"] == 8.0
        assert flat["bbb"] == pareto["bbb"] == 8.0 / 16 * 64

    def test_scheduling_order_never_changes_results(self, tmp_path, outcomes):
        # Seed timings that force a non-input order, then sweep: results
        # must still come back in input order.
        opts = SweepOptions(backend="serial", checkpoint_dir=tmp_path)
        store = CheckpointStore(tmp_path)
        for cell, seconds in zip(CELLS, (1.0, 50.0, 10.0)):
            key = cell_key(
                MODEL_6_6B, DGX1_CLUSTER_64, DEFAULT_CALIBRATION, cell
            )
            store.store_timing(key, seconds)
        got = run_sweep(MODEL_6_6B, DGX1_CLUSTER_64, CELLS, options=opts)
        assert got == outcomes


class TestBackendParity:
    """Every backend must reproduce the serial outcomes exactly."""

    def test_spawn_pool_matches_serial(self, outcomes):
        # The satellite fix: spawn platforms get a real pool through the
        # initializer instead of a silent serial fallback.
        executor = MultiprocessingExecutor(processes=2, start_method="spawn")
        got = run_sweep(MODEL_6_6B, DGX1_CLUSTER_64, CELLS, executor=executor)
        assert got == outcomes

    def test_process_pool_matches_serial(self, outcomes):
        got = run_sweep(
            MODEL_6_6B, DGX1_CLUSTER_64, CELLS,
            options=SweepOptions(backend="process-pool", processes=2),
        )
        assert got == outcomes


class TestTieBreak:
    def test_equal_throughput_prefers_smaller_config(self, monkeypatch):
        seen = []

        def flat_simulate(
            spec, config, cluster, implementation=None, calibration=None,
            schedule=None, record_events=False, memory=None, cost=None,
        ):
            seen.append(config)
            return SimulationResult(
                config=config,
                implementation_name=implementation.name,
                step_time=1.0,
                throughput_per_gpu=1.0,  # every candidate ties
                utilization=0.5,
                compute_busy=1.0,
                pp_comm_busy=0.0,
                dp_comm_busy=0.0,
                bubble_fraction=0.0,
                memory=memory,
                timeline=(),
            )

        def flat_simulate_delta(
            spec, config, cluster, *, base=None, implementation=None,
            calibration=None, schedule=None, memory=None, cost=None,
        ):
            impl = cost.implementation if cost is not None else implementation
            result = flat_simulate(
                spec, config, cluster, implementation=impl,
                calibration=calibration, schedule=schedule,
                memory=memory, cost=cost,
            )
            return result, None, False

        monkeypatch.setattr(grid_module, "simulate", flat_simulate)
        monkeypatch.setattr(grid_module, "simulate_delta", flat_simulate_delta)
        outcome = grid_module.best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, Method.NO_PIPELINE, 64
        )
        assert len(seen) == outcome.n_tried > 1
        assert outcome.best.config.sort_key == min(c.sort_key for c in seen)

    def test_sort_key_orders_all_fields(self):
        from repro.parallel.config import ParallelConfig

        small = ParallelConfig(
            n_dp=1, n_pp=2, n_tp=1, microbatch_size=1, n_microbatches=4
        )
        bigger = ParallelConfig(
            n_dp=1, n_pp=2, n_tp=2, microbatch_size=1, n_microbatches=4
        )
        assert small.sort_key < bigger.sort_key


class TestProgressReporter:
    def test_renders_counts_and_eta(self):
        clock = iter([0.0, 10.0, 10.0, 20.0, 20.0]).__next__
        reporter = ProgressReporter(4, label="t", stream=None, clock=clock)
        reporter.update(2)
        line = reporter.render(10.0)
        assert "2/4" in line and "ETA" in line
        reporter.update(2)
        assert "done" in reporter.render(20.0)

    def test_skipped_cells_reported(self):
        reporter = ProgressReporter(2, clock=lambda: 0.0)
        reporter.skip(2)
        assert "2 from checkpoints" in reporter.render(0.0)

    def test_cost_weighted_eta_with_skewed_cells(self):
        # One giant cell (estimated 100s) plus three tiny ones (1s each),
        # scheduled longest-first.  After the giant finishes in 100s of
        # wall time, the naive completed-cell rate prices the remaining
        # three tiny cells at 300s; the cost-weighted ETA knows only the
        # ~3 estimated seconds remain.
        reporter = ProgressReporter(4, clock=lambda: 0.0)
        reporter.expect([100.0, 1.0, 1.0, 1.0])
        reporter.update(cost=100.0)
        eta = reporter.eta_seconds(100.0)
        assert eta == pytest.approx(3.0)
        naive_eta = (4 - 1) / (1 / 100.0)
        assert eta < naive_eta / 50

    def test_hot_cold_blend_stops_pricing_hot_cells_at_cold_speed(self):
        # Family-clustered scheduling regression: six cells estimated at
        # 10s each; the two cold family-firsts run 2x over estimate
        # (20s), the two cache-hot siblings 5x under it (2s).  The old
        # aggregate rate (44s / 40 cost = 1.1) prices the remaining two
        # hot cells at 22s; the hot/cold blend knows the recent regime
        # is hot (EMA over [0, 0, 1, 1] = 0.75) and prices them at
        # 0.75 * 0.2 + 0.25 * 2.0 = 0.65 s per estimated second.
        reporter = ProgressReporter(6, clock=lambda: 0.0)
        reporter.expect([10.0] * 6)
        for _ in range(2):
            reporter.update(cost=10.0, seconds=20.0, warm_hit_rate=0.0)
        for _ in range(2):
            reporter.update(cost=10.0, seconds=2.0, warm_hit_rate=1.0)
        eta = reporter.eta_seconds(44.0)
        assert eta == pytest.approx(20.0 * 0.65)
        aggregate_eta = 20.0 * (44.0 / 40.0)
        assert eta < aggregate_eta
        cold_rate_eta = 20.0 * 2.0
        assert eta < cold_rate_eta / 3

    def test_blend_needs_both_regimes_observed(self):
        # With only one regime seen (here: all completions cold) the
        # blend has no hot rate to offer and the ETA must fall back to
        # the exact aggregate formula the earlier tests pin.
        reporter = ProgressReporter(4, clock=lambda: 0.0)
        reporter.expect([10.0] * 4)
        reporter.update(cost=10.0, seconds=20.0, warm_hit_rate=0.0)
        assert reporter.eta_seconds(20.0) == pytest.approx(30.0 * 2.0)

    def test_eta_tracks_observed_slowdown(self):
        # Actual time running 2x over the estimates scales the ETA 2x.
        reporter = ProgressReporter(2, clock=lambda: 0.0)
        reporter.expect([10.0, 10.0])
        reporter.update(cost=10.0)
        assert reporter.eta_seconds(20.0) == pytest.approx(20.0)

    def test_eta_falls_back_to_rate_without_costs(self):
        reporter = ProgressReporter(4, clock=lambda: 0.0)
        reporter.update(2)
        assert reporter.eta_seconds(10.0) == pytest.approx(10.0)
        empty = ProgressReporter(4, clock=lambda: 0.0)
        assert empty.eta_seconds(10.0) is None
