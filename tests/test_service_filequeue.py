"""Tests for the file-based work queue and its executor.

The claim protocol is exercised directly (two "workers" racing over the
same directory, requeue after crash, the retry cap) and end-to-end: a
two-worker sweep where the first worker is killed mid-cell must still
produce outcomes byte-identical to a serial run.
"""

from __future__ import annotations

import pytest

from repro.hardware.cluster import DGX1_CLUSTER_64
from repro.models.presets import MODEL_6_6B
from repro.parallel.config import Method
from repro.search.grid import best_configuration
from repro.search.service import (
    DEFAULT_SETTINGS,
    CheckpointStore,
    FileQueueExecutor,
    FileWorkQueue,
    LeaseHeartbeat,
    SweepCell,
    SweepError,
    SweepOptions,
    cell_key,
    run_sweep,
)
from repro.search.service.worker import run_worker
from repro.sim.calibration import DEFAULT_CALIBRATION

CELLS = [
    SweepCell(Method.NO_PIPELINE, 8),
    SweepCell(Method.NO_PIPELINE, 64),
    SweepCell(Method.DEPTH_FIRST, 8),
]


def make_queue(root, **kwargs):
    return FileWorkQueue.create(
        root, MODEL_6_6B, DGX1_CLUSTER_64, DEFAULT_CALIBRATION, **kwargs
    )


def keys_for(cells):
    return [
        cell_key(MODEL_6_6B, DGX1_CLUSTER_64, DEFAULT_CALIBRATION, c)
        for c in cells
    ]


class TestClaimProtocol:
    def test_claim_complete_lifecycle(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.enqueue("k1", CELLS[0])
        assert queue.pending_keys() == {"k1"}

        claim = queue.claim("worker-a")
        assert claim is not None
        assert claim.key == "k1"
        assert claim.cell == CELLS[0]
        assert claim.attempts == 0
        assert queue.pending_keys() == set()
        assert queue.claimed_keys() == {"k1"}

        queue.complete(claim)
        assert queue.done_keys() == {"k1"}
        assert queue.claimed_keys() == set()

    def test_concurrent_claims_get_distinct_cells(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.enqueue("k1", CELLS[0])
        queue.enqueue("k2", CELLS[1])
        a = queue.claim("worker-a")
        b = queue.claim("worker-b")
        assert {a.key, b.key} == {"k1", "k2"}
        assert queue.claim("worker-c") is None

    def test_invalid_worker_id_rejected(self, tmp_path):
        queue = make_queue(tmp_path)
        for bad in ("", "a--b", "a/b"):
            with pytest.raises(ValueError):
                queue.claim(bad)

    def test_context_round_trips(self, tmp_path):
        make_queue(tmp_path, max_retries=5)
        queue = FileWorkQueue.open(tmp_path)
        spec, cluster, calibration, settings = queue.load_context()
        assert spec == MODEL_6_6B
        assert cluster == DGX1_CLUSTER_64
        assert calibration == DEFAULT_CALIBRATION
        assert settings == DEFAULT_SETTINGS
        assert queue.max_retries == 5

    def test_open_requires_initialized_queue(self, tmp_path):
        with pytest.raises(ValueError, match="context.json"):
            FileWorkQueue.open(tmp_path / "nope")


class TestCrashRecovery:
    def test_requeue_claims_of_dead_worker(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.enqueue("k1", CELLS[0])
        queue.claim("dead-worker")  # crashes here, claim left behind

        requeued, exhausted = queue.requeue_claims_of("dead-worker")
        assert requeued == ["k1"] and exhausted == []
        assert queue.pending_keys() == {"k1"}

        retry = queue.claim("worker-b")
        assert retry.attempts == 1  # the crash was counted

    def test_retry_cap_moves_cell_to_failed(self, tmp_path):
        queue = make_queue(tmp_path, max_retries=1)
        queue.enqueue("k1", CELLS[0])
        queue.claim("w-0")
        assert queue.requeue_claims_of("w-0") == (["k1"], [])
        queue.claim("w-1")
        assert queue.requeue_claims_of("w-1") == ([], ["k1"])
        assert queue.failed_keys() == {"k1"}
        assert queue.pending_keys() == set()

    def test_release_requeues_gracefully(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.enqueue("k1", CELLS[0])
        claim = queue.claim("w-0")
        assert queue.release(claim) is True
        assert queue.pending_keys() == {"k1"}
        assert queue.claimed_keys() == set()

    def test_requeue_stale_uses_lease(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.enqueue("k1", CELLS[0])
        claim = queue.claim("remote-worker")
        mtime = claim.path.stat().st_mtime

        fresh = queue.requeue_stale(3600.0, now=mtime + 10)
        assert fresh == ([], [])
        assert queue.claimed_keys() == {"k1"}

        requeued, _ = queue.requeue_stale(3600.0, now=mtime + 7200)
        assert requeued == ["k1"]
        assert queue.pending_keys() == {"k1"}

    def test_lease_clock_starts_at_claim_not_enqueue(self, tmp_path):
        import os as _os
        import time as _time

        queue = make_queue(tmp_path)
        queue.enqueue("k1", CELLS[0])
        # Backdate the pending file: the cell sat unclaimed for "2 hours".
        task = tmp_path / "pending" / "k1.json"
        old = _time.time() - 7200
        _os.utime(task, (old, old))

        claim = queue.claim("w-a")
        # A lease far shorter than the queue wait must NOT expire a claim
        # taken just now.
        assert queue.requeue_stale(60.0, now=_time.time() + 1) == ([], [])
        assert queue.claimed_keys() == {"k1"}
        assert claim.path.stat().st_mtime > old + 3600

    def test_complete_survives_lease_expiry(self, tmp_path):
        # A live worker whose claim was requeued as stale must still be
        # able to record completion (its checkpoint is already stored).
        queue = make_queue(tmp_path)
        queue.enqueue("k1", CELLS[0])
        claim = queue.claim("slow-worker")
        requeued, _ = queue.requeue_stale(0.0, now=claim.path.stat().st_mtime + 1)
        assert requeued == ["k1"]

        queue.complete(claim)  # must not raise
        assert queue.done_keys() == {"k1"}

    def test_exhausted_requeue_tolerates_vanished_claim(self, tmp_path):
        # The claim can disappear between parsing and the failed/ rename
        # (the worker completed it concurrently); that must not raise and
        # must not mark the finished cell failed.
        queue = make_queue(tmp_path, max_retries=0)
        queue.enqueue("k1", CELLS[0])
        claim = queue.claim("w-0")
        claim.path.unlink()  # simulate the concurrent completion rename
        assert queue.release(claim) is True
        assert queue.failed_keys() == set()

    def test_idle_coordinator_recovers_orphaned_external_claim(self, tmp_path):
        # An externally-launched worker (not one of the coordinator's
        # children) died holding a claim; once the coordinator is idle the
        # orphan lease requeues it instead of waiting forever.
        queue = make_queue(tmp_path)
        queue.enqueue("k1", CELLS[0])
        queue.claim("external-worker")
        executor = FileQueueExecutor(
            tmp_path, tmp_path / "ck", orphan_lease=0.0
        )

        executor._recover_stale_claims(queue, idle=False)
        assert queue.claimed_keys() == {"k1"}  # not idle: wait politely
        executor._recover_stale_claims(queue, idle=True)
        assert queue.pending_keys() == {"k1"}


class TestLeaseHeartbeat:
    """A live worker holding a slow cell must never lose it to a janitor."""

    def test_renew_refreshes_the_lease(self, tmp_path):
        import os as _os
        import time as _time

        queue = make_queue(tmp_path)
        queue.enqueue("k1", CELLS[0])
        claim = queue.claim("slow-worker")
        # Backdate the claim far past any lease, then renew: the touched
        # mtime must be what requeue_stale measures against.
        old = _time.time() - 7200
        _os.utime(claim.path, (old, old))
        assert queue.renew(claim) is True
        assert queue.requeue_stale(3600.0) == ([], [])
        assert queue.claimed_keys() == {"k1"}

    def test_renew_reports_vanished_claim(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.enqueue("k1", CELLS[0])
        claim = queue.claim("w-0")
        requeued, _ = queue.requeue_stale(0.0, now=claim.path.stat().st_mtime + 1)
        assert requeued == ["k1"]
        assert queue.renew(claim) is False  # expired; must not raise

    def test_heartbeat_thread_defeats_short_lease(self, tmp_path):
        import time as _time

        queue = make_queue(tmp_path)
        queue.enqueue("k1", CELLS[0])
        claim = queue.claim("slow-worker")
        # Lease 10x the heartbeat interval: a loaded CI runner would
        # have to stall the heartbeat thread for ~a full second to
        # flake this, not just miss one tick.
        lease = 1.0
        with LeaseHeartbeat(queue, claim, interval=lease / 10) as heartbeat:
            deadline = _time.time() + 2 * lease  # "slow cell": 2 leases long
            while _time.time() < deadline:
                assert queue.requeue_stale(lease) == ([], [])
                _time.sleep(lease / 10)
        assert heartbeat.renewals > 0
        assert queue.claimed_keys() == {"k1"}
        queue.complete(claim)
        assert queue.done_keys() == {"k1"}

    def test_heartbeat_interval_validated(self, tmp_path):
        queue = make_queue(tmp_path)
        queue.enqueue("k1", CELLS[0])
        claim = queue.claim("w-0")
        with pytest.raises(ValueError, match="interval"):
            LeaseHeartbeat(queue, claim, interval=0.0)

    def test_heartbeat_interval_derived_from_lease(self):
        from repro.search.service.queue import (
            DEFAULT_HEARTBEAT_INTERVAL,
            heartbeat_interval_for_lease,
        )

        # Short lease: a third, so several touches fit in one window.
        assert heartbeat_interval_for_lease(15.0) == pytest.approx(5.0)
        # Long lease: capped at the default.
        assert (
            heartbeat_interval_for_lease(3600.0) == DEFAULT_HEARTBEAT_INTERVAL
        )
        assert heartbeat_interval_for_lease(None) == DEFAULT_HEARTBEAT_INTERVAL
        with pytest.raises(ValueError, match="lease"):
            heartbeat_interval_for_lease(0.0)

    def test_coordinator_spawns_workers_with_lease_matched_heartbeat(
        self, tmp_path, monkeypatch
    ):
        from repro.search.service import executors as executors_mod

        spawned = []

        class FakeProc:
            def __init__(self, cmd, **kwargs):
                spawned.append(cmd)

        monkeypatch.setattr(executors_mod.subprocess, "Popen", FakeProc)
        executor = FileQueueExecutor(
            tmp_path / "q", tmp_path / "ck", stale_lease=9.0
        )
        executor._spawn("w0", inject_crash=False)
        [cmd] = spawned
        index = cmd.index("--heartbeat-interval")
        assert float(cmd[index + 1]) == pytest.approx(3.0)  # lease / 3

        with pytest.raises(ValueError, match="stale_lease"):
            FileQueueExecutor(tmp_path / "q", tmp_path / "ck", stale_lease=-1.0)

    def test_slow_worker_cell_not_requeued_end_to_end(
        self, tmp_path, monkeypatch
    ):
        """The ROADMAP regression scenario: a live worker computes a cell
        for longer than ``stale_lease`` while a janitor polls
        ``requeue_stale``; with the heartbeat the cell is never requeued,
        never re-executed, and completes exactly once."""
        import threading
        import time as _time

        from repro.search.service import worker as worker_mod

        queue = make_queue(tmp_path / "q")
        key = keys_for(CELLS)[0]
        queue.enqueue(key, CELLS[0])

        lease = 1.0  # 10x the heartbeat: stall-tolerant on loaded CI
        searches = []
        real_search = worker_mod._timed_search

        def slow_search(context, cell):
            searches.append(cell)
            outcome, elapsed = real_search(context, cell)
            _time.sleep(2 * lease)  # the cell outlives the lease
            return outcome, elapsed

        monkeypatch.setattr(worker_mod, "_timed_search", slow_search)

        completed = []
        worker = threading.Thread(
            target=lambda: completed.append(run_worker(
                str(tmp_path / "q"),
                str(tmp_path / "ck"),
                worker_id="slow-worker",
                heartbeat_interval=lease / 10,
            )),
        )
        worker.start()
        requeue_events = []
        while worker.is_alive():
            requeued, exhausted = queue.requeue_stale(lease)
            requeue_events += requeued + exhausted
            _time.sleep(lease / 10)
        worker.join()

        assert requeue_events == []  # the live worker kept its lease
        assert len(searches) == 1  # never re-executed
        assert completed == [1]
        assert queue.done_keys() == {key}
        assert queue.pending_keys() == set()
        assert queue.failed_keys() == set()
        assert CheckpointStore(tmp_path / "ck").load(key) is not None

    def test_without_heartbeat_short_lease_still_expires(
        self, tmp_path, monkeypatch
    ):
        """Control for the regression test: with the heartbeat disabled
        the same slow cell *does* get requeued — proving the test above
        exercises the heartbeat and not merely a generous lease."""
        import threading
        import time as _time

        from repro.search.service import worker as worker_mod

        queue = make_queue(tmp_path / "q")
        key = keys_for(CELLS)[0]
        queue.enqueue(key, CELLS[0])

        lease = 0.3
        real_search = worker_mod._timed_search

        def slow_search(context, cell):
            outcome, elapsed = real_search(context, cell)
            _time.sleep(3 * lease)
            return outcome, elapsed

        monkeypatch.setattr(worker_mod, "_timed_search", slow_search)

        worker = threading.Thread(
            target=lambda: run_worker(
                str(tmp_path / "q"),
                str(tmp_path / "ck"),
                worker_id="slow-worker",
                max_cells=1,
                heartbeat_interval=None,
            ),
        )
        worker.start()
        requeue_events = []
        while worker.is_alive():
            requeued, exhausted = queue.requeue_stale(lease)
            requeue_events += requeued + exhausted
            _time.sleep(lease / 3)
        worker.join()

        assert key in requeue_events  # the old wasteful behaviour
        assert queue.done_keys() == {key}  # completion still idempotent


class TestWorkerFunction:
    """run_worker in-process: the subprocess entry minus the subprocess."""

    def test_worker_drains_queue_and_checkpoints(self, tmp_path):
        queue = make_queue(tmp_path / "q")
        store_dir = tmp_path / "ck"
        keys = keys_for(CELLS)
        for key, cell in zip(keys, CELLS):
            queue.enqueue(key, cell)

        completed = run_worker(
            str(tmp_path / "q"), str(store_dir), worker_id="w-test"
        )
        assert completed == len(CELLS)
        assert queue.done_keys() == set(keys)
        store = CheckpointStore(store_dir)
        for key, cell in zip(keys, CELLS):
            expected = best_configuration(
                MODEL_6_6B, DGX1_CLUSTER_64, cell.method, cell.batch_size
            )
            assert store.load(key) == expected

    def test_worker_reuses_existing_checkpoint(self, tmp_path, monkeypatch):
        queue = make_queue(tmp_path / "q")
        store = CheckpointStore(tmp_path / "ck")
        key = keys_for(CELLS)[0]
        outcome = best_configuration(
            MODEL_6_6B, DGX1_CLUSTER_64, CELLS[0].method, CELLS[0].batch_size
        )
        store.store(key, outcome)
        queue.enqueue(key, CELLS[0])

        def boom(*a, **k):
            raise AssertionError("recomputed a checkpointed cell")

        monkeypatch.setattr(
            "repro.search.service.worker._timed_search", boom
        )
        assert run_worker(
            str(tmp_path / "q"), str(tmp_path / "ck"), worker_id="w"
        ) == 1
        assert queue.done_keys() == {key}


class TestFileQueueEndToEnd:
    def serial_reference(self):
        return run_sweep(
            MODEL_6_6B, DGX1_CLUSTER_64, CELLS,
            options=SweepOptions(backend="serial"),
        )

    def test_two_worker_sweep_matches_serial(self, tmp_path):
        got = run_sweep(
            MODEL_6_6B, DGX1_CLUSTER_64, CELLS,
            options=SweepOptions(
                backend="file-queue",
                checkpoint_dir=tmp_path / "ck",
                queue_dir=tmp_path / "q",
                workers=2,
            ),
        )
        assert got == self.serial_reference()

    def test_killed_worker_is_requeued_byte_identical(self, tmp_path):
        """The acceptance scenario: one worker dies mid-cell (SIGKILL
        semantics), its cell is requeued, and the final outcomes and
        checkpoint bytes match an uninterrupted serial run."""
        reference = self.serial_reference()
        keys = keys_for(CELLS)
        executor = FileQueueExecutor(
            tmp_path / "q",
            tmp_path / "ck",
            workers=2,
            crash_first_worker_after=1,
        )
        context = (
            MODEL_6_6B, DGX1_CLUSTER_64, DEFAULT_CALIBRATION,
            DEFAULT_SETTINGS,
        )
        tasks = list(zip(range(len(CELLS)), keys, CELLS))
        results = {
            index: outcome
            for index, outcome, _elapsed in executor.run(context, tasks)
        }
        assert [results[i] for i in range(len(CELLS))] == reference

        store = CheckpointStore(tmp_path / "ck")
        for key, outcome in zip(keys, reference):
            assert (
                store.path_for(key).read_bytes()
                == store.payload_bytes(key, outcome)
            )

    def test_exhausted_retries_raise_not_drop(self, tmp_path):
        # Every attempt crashes before finishing a single cell: the sweep
        # must fail loudly once the retry cap is hit.
        executor = FileQueueExecutor(
            tmp_path / "q",
            tmp_path / "ck",
            workers=1,
            max_retries=0,
            crash_first_worker_after=0,
        )
        # Crash injection only applies to the first worker launched; with
        # max_retries=0 its crashed cell fails immediately.
        context = (
            MODEL_6_6B, DGX1_CLUSTER_64, DEFAULT_CALIBRATION,
            DEFAULT_SETTINGS,
        )
        tasks = [(0, keys_for(CELLS)[0], CELLS[0])]
        with pytest.raises(SweepError, match="retry cap"):
            list(executor.run(context, tasks))
