"""Tests for the noise-scale estimator and the cost/time trade-off."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sgd.batch import samples_to_target, steps_to_target
from repro.sgd.noise_scale import (
    NoiseScaleEstimator,
    noise_scale_exact,
    noise_scale_paired,
)
from repro.sgd.tradeoff import (
    BCRIT_52B,
    BCRIT_6_6B,
    UtilizationCurve,
    tradeoff_curve,
)


class TestNoiseScaleExact:
    def test_recovers_known_noise_scale(self):
        # Per-sample gradients g_i = G + noise, tr(Sigma)/|G|^2 known.
        rng = np.random.default_rng(0)
        dim, n = 200, 4000
        true_grad = np.ones(dim)  # |G|^2 = dim
        sigma = 2.0
        grads = true_grad + rng.normal(0, sigma, size=(n, dim))
        expected = sigma**2 * dim / dim  # tr(Sigma) / |G|^2 = sigma^2
        estimate = noise_scale_exact(grads)
        assert estimate == pytest.approx(expected, rel=0.15)

    def test_zero_noise(self):
        grads = np.tile(np.ones(8), (10, 1)) + 1e-12
        assert noise_scale_exact(grads) == pytest.approx(0.0, abs=1e-6)

    def test_needs_two_samples(self):
        with pytest.raises(ValueError, match="two"):
            noise_scale_exact(np.ones((1, 4)))

    def test_needs_2d(self):
        with pytest.raises(ValueError, match="2-d"):
            noise_scale_exact(np.ones(4))

    def test_pure_noise_rejected(self):
        rng = np.random.default_rng(1)
        with pytest.raises(ValueError, match="noise"):
            noise_scale_exact(rng.normal(size=(4, 1000)))


class TestNoiseScalePaired:
    def test_consistent_with_model(self):
        # E|g_B|^2 = |G|^2 + tr(Sigma)/B with |G|^2=4, tr(Sigma)=8.
        small = 4 + 8 / 2
        big = 4 + 8 / 16
        assert noise_scale_paired(small, big, 2, 16) == pytest.approx(2.0)

    def test_order_enforced(self):
        with pytest.raises(ValueError, match="batch_small"):
            noise_scale_paired(1.0, 1.0, 8, 2)

    def test_running_estimator(self):
        est = NoiseScaleEstimator(batch_small=2, batch_big=16, decay=0.5)
        for _ in range(20):
            est.update(4 + 8 / 2, 4 + 8 / 16)
        assert est.noise_scale == pytest.approx(2.0, rel=1e-6)

    def test_estimator_requires_data(self):
        with pytest.raises(ValueError, match="no measurements"):
            _ = NoiseScaleEstimator(2, 4).noise_scale


class TestBatchOverhead:
    def test_eq7_doubles_at_bcrit(self):
        assert samples_to_target(1000, 1000, 5000) == pytest.approx(10000)

    def test_small_batch_limit(self):
        assert samples_to_target(1, 1e9, 5000) == pytest.approx(5000, rel=1e-6)

    def test_gpt3_overhead_paper_example(self):
        # Section 3.5: B = 3M tokens vs B_crit = 10M -> ~30% overhead.
        overhead = samples_to_target(3e6, 10e6, 1.0) - 1.0
        assert overhead == pytest.approx(0.3)

    def test_52b_batch_1024_overhead(self):
        # Footnote 9: B=1024 gives ~15% overhead for the 52B model.
        overhead = samples_to_target(1024, BCRIT_52B, 1.0) - 1.0
        assert overhead == pytest.approx(0.15, abs=0.01)

    def test_6_6b_batch_1024_overhead(self):
        # Footnote 9: ~30% for the 6.6B model.
        overhead = samples_to_target(1024, BCRIT_6_6B, 1.0) - 1.0
        assert overhead == pytest.approx(0.30, abs=0.01)

    def test_steps_to_target(self):
        assert steps_to_target(100, 1000, 1000) == pytest.approx(11.0)

    def test_invalid(self):
        with pytest.raises(ValueError):
            samples_to_target(0, 1, 1)


class TestTradeoff:
    CURVE = UtilizationCurve(
        method="test",
        points=((0.125, 0.30), (1.0, 0.40), (8.0, 0.50)),
    )

    def _points(self, sizes=(256, 1024, 4096)):
        return tradeoff_curve(
            self.CURVE, list(sizes), 6780.0, 4.2e14, 125e12
        )

    def test_time_decreases_with_cluster_size(self):
        pts = self._points()
        times = [p.time_days for p in pts]
        assert times == sorted(times, reverse=True)

    def test_cost_increases_with_cluster_size(self):
        pts = self._points()
        costs = [p.cost_gpu_days for p in pts]
        assert costs == sorted(costs)

    def test_eq8_cost_time_relation(self):
        for p in self._points():
            assert p.cost_gpu_days == pytest.approx(p.time_days * p.n_gpus)

    def test_large_cluster_prefers_small_beta(self):
        pts = self._points(sizes=(256, 65536))
        assert pts[-1].beta <= pts[0].beta

    def test_52b_headline_scale(self):
        # Figure 1a: ~10-20 days on 4096 V100s for the best method.
        pts = tradeoff_curve(
            self.CURVE, [4096], BCRIT_52B, 4.3e14, 125e12
        )
        assert 3 < pts[0].time_days < 40

    def test_invalid_cluster_size(self):
        with pytest.raises(ValueError):
            self._points(sizes=(0,))

    def test_curve_validation(self):
        with pytest.raises(ValueError):
            UtilizationCurve("bad", ())
        with pytest.raises(ValueError):
            UtilizationCurve("bad", ((1.0, 1.5),))


@settings(max_examples=50, deadline=None)
@given(
    batch=st.floats(1, 1e6),
    bcrit=st.floats(1, 1e6),
    base=st.floats(1, 1e9),
)
def test_samples_monotone_in_batch_property(batch, bcrit, base):
    assert samples_to_target(batch, bcrit, base) >= base
    assert samples_to_target(batch * 2, bcrit, base) > samples_to_target(
        batch, bcrit, base
    )
