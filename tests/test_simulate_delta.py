"""Incremental re-simulation: bit-exact parity with full simulation.

:func:`repro.sim.simulator.simulate_delta` replays only the event-graph
suffix that differs from a sibling configuration's program.  Its
contract is absolute: the returned :class:`SimulationResult` equals
``simulate(...)``'s **bit-for-bit** — same step time, same per-stream
busy seconds, same throughput — whether the delta path replayed, fell
back, or had no base at all.  The parity suite here holds that across
all five schedule kinds plus the hybrid axis, for the sibling shape the
batched search actually exploits (sharding flips within one family) and
for deliberately hostile bases (different micro-batch counts) where the
dirty-closure must bail to the fallback.
"""

from __future__ import annotations

import pytest

from repro.hardware.cluster import DGX1_CLUSTER_64
from repro.implementations import MEGATRON_LM, OUR_IMPLEMENTATION
from repro.models.presets import MODEL_6_6B
from repro.parallel.config import ParallelConfig, ScheduleKind, Sharding
from repro.sim.engine import run_streams, run_streams_delta
from repro.sim.simulator import simulate, simulate_delta

SPEC = MODEL_6_6B
CLUSTER = DGX1_CLUSTER_64


def _config(schedule, sharding=Sharding.NONE, **over):
    kwargs = dict(
        n_dp=4, n_pp=2, n_tp=1, microbatch_size=2, n_microbatches=8,
        n_loop=2 if schedule in (ScheduleKind.BREADTH_FIRST,
                                 ScheduleKind.DEPTH_FIRST) else 1,
        sharding=sharding, schedule=schedule,
    )
    if schedule is ScheduleKind.HYBRID:
        kwargs["sequence_size"] = 2
    kwargs.update(over)
    return ParallelConfig(**kwargs)


def _impl_for(schedule):
    # Megatron's profile only supports DP0; sibling pairs need a
    # sharding flip, so the parity suite runs everything on ours.
    del schedule
    return OUR_IMPLEMENTATION


ALL_SCHEDULES = list(ScheduleKind)


class TestParity:
    @pytest.mark.parametrize("schedule", ALL_SCHEDULES, ids=lambda s: s.name)
    def test_no_base_equals_simulate(self, schedule):
        config = _config(schedule)
        impl = _impl_for(schedule)
        expected = simulate(SPEC, config, CLUSTER, implementation=impl)
        result, base, replayed = simulate_delta(
            SPEC, config, CLUSTER, base=None, implementation=impl
        )
        assert not replayed
        assert result == expected
        assert base.config == config

    @pytest.mark.parametrize("schedule", ALL_SCHEDULES, ids=lambda s: s.name)
    def test_sibling_replay_is_bit_exact(self, schedule):
        """The search's sibling shape: same family, sharding flipped."""
        impl = _impl_for(schedule)
        base_config = _config(schedule, Sharding.NONE)
        sibling = _config(schedule, Sharding.PARTIAL)
        _, base, _ = simulate_delta(
            SPEC, base_config, CLUSTER, base=None, implementation=impl
        )
        expected = simulate(SPEC, sibling, CLUSTER, implementation=impl)
        result, new_base, replayed = simulate_delta(
            SPEC, sibling, CLUSTER, base=base, implementation=impl
        )
        assert result == expected  # every field, every float
        assert new_base.config == sibling
        # The replay itself must have engaged for at least the DP-heavy
        # schedules; either way the result above is already bit-equal.
        if replayed:
            fresh = run_streams(new_base.streams, record_events=False)
            assert new_base.engine_result.makespan == fresh.makespan
            assert new_base.engine_result.stream_busy == fresh.stream_busy
            assert new_base.engine_result.finish_times == fresh.finish_times

    def test_replay_engages_for_gpipe_sharding_flip(self):
        """The headline pair (GPipe DP0 -> DP_PS) must actually take the
        delta path, not silently fall back — the ≥10x win depends on it."""
        impl = OUR_IMPLEMENTATION
        _, base, _ = simulate_delta(
            SPEC, _config(ScheduleKind.GPIPE, Sharding.NONE), CLUSTER,
            base=None, implementation=impl,
        )
        _, _, replayed = simulate_delta(
            SPEC, _config(ScheduleKind.GPIPE, Sharding.PARTIAL), CLUSTER,
            base=base, implementation=impl,
        )
        assert replayed

    def test_hostile_base_falls_back_and_stays_exact(self):
        """A base from a different micro-batch count shares almost no
        event-graph prefix: the dirty-closure must refuse to replay
        (fallback), and the result must still equal simulate()."""
        impl = OUR_IMPLEMENTATION
        _, base, _ = simulate_delta(
            SPEC, _config(ScheduleKind.GPIPE, n_microbatches=2), CLUSTER,
            base=None, implementation=impl,
        )
        target = _config(ScheduleKind.GPIPE, n_microbatches=16)
        expected = simulate(SPEC, target, CLUSTER, implementation=impl)
        result, _, replayed = simulate_delta(
            SPEC, target, CLUSTER, base=base, implementation=impl
        )
        assert not replayed
        assert result == expected

    def test_megatron_one_f_one_b_parity(self):
        """The other library profile (non-overlapping DP) through the
        no-base and self-base paths."""
        config = _config(ScheduleKind.ONE_F_ONE_B, Sharding.NONE)
        expected = simulate(SPEC, config, CLUSTER, implementation=MEGATRON_LM)
        result, base, _ = simulate_delta(
            SPEC, config, CLUSTER, base=None, implementation=MEGATRON_LM
        )
        assert result == expected
        # Re-simulating the *same* config against its own base: zero
        # dirty instructions, everything reused, still bit-equal.
        result2, _, replayed = simulate_delta(
            SPEC, config, CLUSTER, base=base, implementation=MEGATRON_LM
        )
        assert replayed
        assert result2 == expected


class TestEngineDelta:
    def test_identical_streams_reuse_everything(self):
        config = _config(ScheduleKind.BREADTH_FIRST)
        _, base, _ = simulate_delta(
            SPEC, config, CLUSTER, base=None, implementation=OUR_IMPLEMENTATION
        )
        result = run_streams_delta(
            base.streams, base.streams, base.engine_result
        )
        assert result is not None
        assert result.makespan == base.engine_result.makespan
        assert result.finish_times == base.engine_result.finish_times
        assert result.stream_busy == base.engine_result.stream_busy

    def test_dirty_fraction_threshold_returns_none(self):
        config = _config(ScheduleKind.BREADTH_FIRST)
        _, base, _ = simulate_delta(
            SPEC, config, CLUSTER, base=None, implementation=OUR_IMPLEMENTATION
        )
        # Perturb every duration: 100% dirty, way over any threshold.
        perturbed = {
            key: [
                type(instr)(
                    uid=instr.uid, duration=instr.duration + 1.0,
                    deps=instr.deps, label=instr.label,
                    category=instr.category,
                )
                for instr in queue
            ]
            for key, queue in base.streams.items()
        }
        assert (
            run_streams_delta(perturbed, base.streams, base.engine_result)
            is None
        )
