"""Tests for the end-to-end step simulator — the paper's key orderings."""

from __future__ import annotations

import dataclasses

import pytest

from repro.hardware.cluster import DGX1_CLUSTER_64, DGX1_CLUSTER_64_ETHERNET
from repro.models.presets import MODEL_6_6B, MODEL_52B
from repro.parallel.config import ParallelConfig, ScheduleKind, Sharding
from repro.sim.calibration import DEFAULT_CALIBRATION
from repro.sim.implementation import MEGATRON_LM, OUR_IMPLEMENTATION
from repro.sim.simulator import simulate


def sim(spec=MODEL_52B, cluster=DGX1_CLUSTER_64, **kw):
    base = dict(
        n_dp=1, n_pp=8, n_tp=8, microbatch_size=1, n_microbatches=8,
        n_loop=4, schedule=ScheduleKind.BREADTH_FIRST,
    )
    base.update(kw)
    return simulate(spec, ParallelConfig(**base), cluster)


class TestBasicProperties:
    def test_utilization_in_range(self):
        r = sim()
        assert 0 < r.utilization < 1

    def test_step_time_exceeds_compute_lower_bound(self):
        r = sim()
        assert r.step_time >= r.compute_busy

    def test_deterministic(self):
        assert sim().step_time == sim().step_time

    def test_throughput_consistent_with_utilization(self):
        r = sim()
        assert r.throughput_per_gpu == pytest.approx(r.utilization * 125e12)

    def test_timeline_recorded_on_request(self):
        config = ParallelConfig(
            n_dp=1, n_pp=2, n_tp=8, microbatch_size=1, n_microbatches=4,
            n_loop=2, schedule=ScheduleKind.BREADTH_FIRST,
        )
        r = simulate(MODEL_52B, config, DGX1_CLUSTER_64, record_events=True)
        assert len(r.timeline) > 0
        assert any(e.category == "optimizer" for e in r.timeline)

    def test_timeline_empty_by_default(self):
        assert sim().timeline == ()

    def test_memory_breakdown_attached(self):
        r = sim()
        assert r.memory.total > 0
        assert r.memory.total_min <= r.memory.total

    def test_default_implementation_per_schedule(self):
        assert sim().implementation_name == OUR_IMPLEMENTATION.name
        r = sim(schedule=ScheduleKind.DEPTH_FIRST)
        assert r.implementation_name == MEGATRON_LM.name


class TestBubbleFraction:
    """The bubble is measured against the engine makespan, not the step
    time: the fixed step overhead is not pipeline idle time."""

    def test_bubble_uses_makespan(self):
        r = sim()
        makespan = r.step_time - DEFAULT_CALIBRATION.fixed_step_overhead
        assert r.bubble_fraction == pytest.approx(
            1.0 - r.compute_busy / makespan
        )

    def test_bubble_independent_of_fixed_overhead(self):
        config = ParallelConfig(
            n_dp=1, n_pp=8, n_tp=8, microbatch_size=1, n_microbatches=8,
            n_loop=4, schedule=ScheduleKind.BREADTH_FIRST,
        )
        base = simulate(MODEL_52B, config, DGX1_CLUSTER_64)
        slow_steps = simulate(
            MODEL_52B, config, DGX1_CLUSTER_64,
            calibration=dataclasses.replace(
                DEFAULT_CALIBRATION, fixed_step_overhead=1.0
            ),
        )
        assert slow_steps.step_time > base.step_time
        assert slow_steps.bubble_fraction == pytest.approx(
            base.bubble_fraction
        )

    def test_bubble_in_unit_range(self):
        r = sim()
        assert 0.0 <= r.bubble_fraction < 1.0


class TestPaperOrderings:
    """The qualitative results of Figures 5 and 6 must hold."""

    def test_breadth_first_beats_non_looped_small_batch(self):
        bf = sim(schedule=ScheduleKind.BREADTH_FIRST, n_loop=4, n_microbatches=8)
        gpipe = sim(schedule=ScheduleKind.GPIPE, n_loop=1, n_microbatches=8)
        assert bf.utilization > gpipe.utilization * 1.2

    def test_breadth_first_beats_depth_first_small_batch(self):
        bf = sim(schedule=ScheduleKind.BREADTH_FIRST, n_loop=4, n_microbatches=8)
        df = sim(schedule=ScheduleKind.DEPTH_FIRST, n_loop=4, n_microbatches=8)
        assert bf.utilization > df.utilization

    def test_depth_first_degrades_at_high_loop_large_batch(self):
        # Figure 6b: the depth-first schedule loses utilization as N_loop
        # grows (exposed PP latency), while breadth-first does not.
        df2 = sim(schedule=ScheduleKind.DEPTH_FIRST, n_loop=2, n_microbatches=64)
        df8 = sim(schedule=ScheduleKind.DEPTH_FIRST, n_loop=8, n_microbatches=64)
        assert df8.utilization < df2.utilization
        bf2 = sim(schedule=ScheduleKind.BREADTH_FIRST, n_loop=2, n_microbatches=64)
        bf8 = sim(schedule=ScheduleKind.BREADTH_FIRST, n_loop=8, n_microbatches=64)
        assert bf8.utilization >= bf2.utilization * 0.97

    def test_looping_helps_at_small_batch(self):
        bf1 = sim(schedule=ScheduleKind.BREADTH_FIRST, n_loop=1, n_microbatches=16)
        bf8 = sim(schedule=ScheduleKind.BREADTH_FIRST, n_loop=8, n_microbatches=16)
        assert bf8.utilization > bf1.utilization

    def test_utilization_grows_with_batch(self):
        small = sim(n_microbatches=8)
        large = sim(n_microbatches=64)
        assert large.utilization > small.utilization

    def test_gpipe_and_1f1b_close_with_same_impl(self):
        # Paper: same computational efficiency; small gap is Megatron's
        # missing overlap.  With the same implementation they should agree.
        gpipe = simulate(
            MODEL_52B,
            ParallelConfig(
                n_dp=1, n_pp=8, n_tp=8, microbatch_size=1, n_microbatches=16,
                schedule=ScheduleKind.GPIPE,
            ),
            DGX1_CLUSTER_64,
            implementation=OUR_IMPLEMENTATION,
        )
        one_f = simulate(
            MODEL_52B,
            ParallelConfig(
                n_dp=1, n_pp=8, n_tp=8, microbatch_size=1, n_microbatches=16,
                schedule=ScheduleKind.ONE_F_ONE_B,
            ),
            DGX1_CLUSTER_64,
            implementation=OUR_IMPLEMENTATION,
        )
        assert one_f.utilization == pytest.approx(gpipe.utilization, rel=0.02)


class TestShardingAndNetworks:
    def test_full_sharding_cuts_memory(self):
        dp0 = sim(n_dp=2, n_pp=4, sharding=Sharding.NONE)
        fs = sim(n_dp=2, n_pp=4, sharding=Sharding.FULL)
        assert fs.memory.total < dp0.memory.total * 0.85

    def test_ethernet_slower_than_infiniband(self):
        ib = sim(
            spec=MODEL_6_6B, n_dp=8, n_pp=4, n_tp=2, n_microbatches=8,
        )
        eth = sim(
            spec=MODEL_6_6B, cluster=DGX1_CLUSTER_64_ETHERNET,
            n_dp=8, n_pp=4, n_tp=2, n_microbatches=8,
        )
        assert eth.utilization < ib.utilization

    def test_breadth_first_fs_beats_per_microbatch_fs(self):
        # Eq. (24) vs (26): per-microbatch DP_FS repetition (GPipe) costs
        # far more network time than per-pass (breadth-first).
        bf = sim(
            spec=MODEL_6_6B, n_dp=8, n_pp=4, n_tp=2, n_loop=4,
            n_microbatches=8, sharding=Sharding.FULL,
        )
        gpipe = sim(
            spec=MODEL_6_6B, n_dp=8, n_pp=4, n_tp=2, n_loop=1,
            n_microbatches=8, sharding=Sharding.FULL,
            schedule=ScheduleKind.GPIPE,
        )
        assert bf.dp_comm_busy < gpipe.dp_comm_busy / 2
        assert bf.utilization > gpipe.utilization


class TestAnchors:
    """Absolute throughputs stay within the calibrated band of Appendix E."""

    def test_52b_breadth_first_small_batch(self):
        # Paper: 42.33 Tflop/s at B=9, N_loop=8 (Table E.1).
        r = sim(n_loop=8, n_microbatches=9)
        assert 38 < r.throughput_per_gpu / 1e12 < 58

    def test_52b_non_looped_small_batch(self):
        # Paper: 26.04 Tflop/s at B=8 (Table E.1).
        r = sim(schedule=ScheduleKind.GPIPE, n_loop=1, n_microbatches=8)
        assert 20 < r.throughput_per_gpu / 1e12 < 40

    def test_52b_memory_anchor(self):
        # Paper: ~14.7-16 GB for the B=9 loop-8 DP0 config.
        r = sim(n_loop=8, n_microbatches=9)
        assert 12 < r.memory.total / 2**30 < 20
