"""Tests for the multiprocessing sweep orchestrator."""

from __future__ import annotations

import multiprocessing

import pytest

from repro.hardware.cluster import DGX1_CLUSTER_64
from repro.models.presets import MODEL_6_6B
from repro.parallel.config import Method
from repro.search.grid import best_configuration
from repro.search.sweep import SweepCell, sweep_cells, sweep_grid

#: Small, fast cells (6.6B no-pipeline spaces have ~2-20 candidates).
CELLS = [
    SweepCell(Method.NO_PIPELINE, 8),
    SweepCell(Method.NO_PIPELINE, 64),
    SweepCell(Method.DEPTH_FIRST, 8),
]


def outcome_key(outcome):
    return (
        outcome.method,
        outcome.batch_size,
        outcome.n_tried,
        outcome.n_excluded,
        None
        if outcome.best is None
        else (outcome.best.config, outcome.best.throughput_per_gpu),
    )


class TestSweepCells:
    def test_serial_matches_direct_search(self):
        outcomes = sweep_cells(MODEL_6_6B, DGX1_CLUSTER_64, CELLS, processes=1)
        direct = [
            best_configuration(MODEL_6_6B, DGX1_CLUSTER_64, c.method, c.batch_size)
            for c in CELLS
        ]
        assert [outcome_key(o) for o in outcomes] == [
            outcome_key(o) for o in direct
        ]

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_pool_matches_serial(self):
        pooled = sweep_cells(MODEL_6_6B, DGX1_CLUSTER_64, CELLS, processes=2)
        serial = sweep_cells(MODEL_6_6B, DGX1_CLUSTER_64, CELLS, processes=1)
        assert [outcome_key(o) for o in pooled] == [
            outcome_key(o) for o in serial
        ]

    def test_preserves_input_order(self):
        cells = list(reversed(CELLS))
        outcomes = sweep_cells(MODEL_6_6B, DGX1_CLUSTER_64, cells, processes=1)
        assert [(o.method, o.batch_size) for o in outcomes] == [
            (c.method, c.batch_size) for c in cells
        ]

    def test_empty_cells(self):
        assert sweep_cells(MODEL_6_6B, DGX1_CLUSTER_64, [], processes=4) == []


class TestSweepGrid:
    def test_groups_by_method_in_batch_order(self):
        methods = [Method.NO_PIPELINE, Method.DEPTH_FIRST]
        batches = [8, 64]
        grouped = sweep_grid(
            MODEL_6_6B, DGX1_CLUSTER_64, methods, batches, processes=1
        )
        assert list(grouped) == methods
        for method, outcomes in grouped.items():
            assert [o.batch_size for o in outcomes] == batches
            assert all(o.method is method for o in outcomes)
