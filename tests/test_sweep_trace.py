"""Tests for the sweep-level Chrome trace (queue events + sidecars).

Covers the queue's advisory event log (one single-writer file per
actor, claim/complete/release/requeue records), the attributed timing
sidecars, and the end-to-end trace build: a real file-queue sweep must
yield one slice per completed cell on the lane of the worker that
computed it, loadable as Trace Event Format.
"""

from __future__ import annotations

import json

from repro.hardware.cluster import DGX1_CLUSTER_64
from repro.models.presets import MODEL_6_6B
from repro.parallel.config import Method
from repro.search.service import (
    CheckpointStore,
    FileWorkQueue,
    SweepCell,
    SweepOptions,
    cell_key,
    run_sweep,
)
from repro.search.service.worker import run_worker
from repro.sim.calibration import DEFAULT_CALIBRATION
from repro.viz.sweep_trace import sweep_trace, write_sweep_trace

CELLS = [
    SweepCell(Method.NO_PIPELINE, 8),
    SweepCell(Method.NO_PIPELINE, 64),
    SweepCell(Method.DEPTH_FIRST, 8),
]


def make_queue(root):
    return FileWorkQueue.create(
        root, MODEL_6_6B, DGX1_CLUSTER_64, DEFAULT_CALIBRATION
    )


class TestEventLog:
    def test_claim_complete_events_recorded(self, tmp_path):
        queue = make_queue(tmp_path / "q")
        queue.enqueue("k1", CELLS[0])
        claim = queue.claim("worker-a")
        queue.complete(claim)
        events = queue.events()
        kinds = [(e["event"], e["key"], e["worker"]) for e in events]
        assert ("claim", "k1", "worker-a") in kinds
        assert ("complete", "k1", "worker-a") in kinds
        claim_event = next(e for e in events if e["event"] == "claim")
        assert claim_event["method"] == CELLS[0].method.value
        assert claim_event["batch_size"] == CELLS[0].batch_size

    def test_release_and_requeue_events(self, tmp_path):
        queue = make_queue(tmp_path / "q")
        queue.enqueue("k1", CELLS[0])
        claim = queue.claim("worker-a")
        assert queue.release(claim)
        claim = queue.claim("worker-b")
        requeued, _ = queue.requeue_stale(0.0, now=claim.path.stat().st_mtime + 10)
        assert requeued == ["k1"]
        kinds = {(e["event"], e["worker"]) for e in queue.events()}
        assert ("release", "worker-a") in kinds
        assert ("requeue", "worker-b") in kinds

    def test_events_are_time_ordered_and_attributed(self, tmp_path):
        queue = make_queue(tmp_path / "q")
        for i, cell in enumerate(CELLS):
            queue.enqueue(f"k{i}", cell)
        for worker in ("w-a", "w-b", "w-a"):
            claim = queue.claim(worker)
            queue.complete(claim)
        events = queue.events()
        times = [e["t"] for e in events]
        assert times == sorted(times)
        assert all(e["actor"] for e in events)

    def test_create_resets_event_log(self, tmp_path):
        queue = make_queue(tmp_path / "q")
        queue.record_event("w", "claim", "k")
        assert queue.events()
        make_queue(tmp_path / "q")
        assert queue.events() == []


class TestTimingAttribution:
    def test_sidecar_round_trips_worker_and_start(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.store_timing("k1", 1.5, worker="host-1", started_at=1000.0)
        record = store.load_timing_record("k1")
        assert record["worker"] == "host-1"
        assert record["started_at"] == 1000.0
        assert store.load_timing("k1") == 1.5

    def test_plain_sidecar_still_loads(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.store_timing("k1", 2.0)
        assert store.load_timing("k1") == 2.0
        record = store.load_timing_record("k1")
        assert "worker" not in record


class TestSweepTrace:
    def test_file_queue_sweep_produces_one_slice_per_cell(self, tmp_path):
        checkpoint_dir = tmp_path / "ckpt"
        outcomes = run_sweep(
            MODEL_6_6B, DGX1_CLUSTER_64, CELLS,
            options=SweepOptions(
                backend="file-queue",
                checkpoint_dir=checkpoint_dir,
                workers=2,
            ),
        )
        assert len(outcomes) == len(CELLS)
        trace = sweep_trace(checkpoint_dir, checkpoint_dir / "queue")
        events = trace["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        keys = {
            cell_key(MODEL_6_6B, DGX1_CLUSTER_64, DEFAULT_CALIBRATION, c)
            for c in CELLS
        }
        assert {s["args"]["key"] for s in slices} == keys
        # Queue events bracket ownership; they are preferred over sidecars.
        assert all(s["args"]["source"] == "queue" for s in slices)
        assert all(s["dur"] >= 0 for s in slices)
        # Every slice sits on a named worker lane.
        names = {
            e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names
        assert all(n.startswith("worker ") for n in names)
        # Slice labels are human-readable cells, not raw hashes.
        assert {s["name"] for s in slices} == {
            f"{c.method.value} B={c.batch_size}" for c in CELLS
        }

    def test_sidecar_fallback_without_queue_dir(self, tmp_path):
        # A worker-driven run traced without the queue directory still
        # yields slices from the attributed sidecars.
        queue_dir = tmp_path / "q"
        checkpoint_dir = tmp_path / "ckpt"
        queue = make_queue(queue_dir)
        for cell in CELLS[:2]:
            queue.enqueue(
                cell_key(MODEL_6_6B, DGX1_CLUSTER_64, DEFAULT_CALIBRATION, cell),
                cell,
            )
        completed = run_worker(
            str(queue_dir), str(checkpoint_dir), worker_id="solo",
            heartbeat_interval=None,
        )
        assert completed == 2
        trace = sweep_trace(checkpoint_dir)  # no queue_dir
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 2
        assert all(s["args"]["source"] == "sidecar" for s in slices)

    def test_write_sweep_trace_is_loadable_json(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.store_timing("k1", 1.0, worker="w", started_at=10.0)
        path = write_sweep_trace(tmp_path / "trace.json", tmp_path / "ckpt")
        data = json.loads(path.read_text())
        assert data["traceEvents"]
        assert data["displayTimeUnit"] == "ms"

    def test_empty_directories_yield_empty_trace(self, tmp_path):
        trace = sweep_trace(tmp_path / "ckpt")
        assert trace["traceEvents"] == []


class TestTornEventLogs:
    """A killed worker's half-written debris must never break a reader."""

    def test_truncated_final_line_is_skipped(self, tmp_path):
        queue = make_queue(tmp_path / "q")
        queue.enqueue("k1", CELLS[0])
        queue.complete(queue.claim("w-a"))
        # A worker killed mid-append leaves a truncated final line, here
        # torn inside a multi-byte UTF-8 sequence.
        log = tmp_path / "q" / "events" / "w-a.jsonl"
        with open(log, "ab") as fh:
            fh.write(b'{"event": "claim", "t": 9.0, "wor\xe2')
        events = queue.events()
        assert [(e["event"], e["key"]) for e in events] == [
            ("claim", "k1"),
            ("complete", "k1"),
        ]

    def test_garbage_lines_and_bad_types_are_tolerated(self, tmp_path):
        queue = make_queue(tmp_path / "q")
        queue.enqueue("k1", CELLS[0])
        queue.complete(queue.claim("w-a"))
        (tmp_path / "q" / "events" / "other.jsonl").write_bytes(
            b"not json at all\n"
            b'"a bare string"\n'
            b'{"event": "claim", "key": "k2", "worker": "w-b", "t": "soon"}\n'
            b"\xff\xfe\n"
        )
        events = queue.events()  # non-numeric t must not break the sort
        assert ("complete", "k1") in {
            (e["event"], e.get("key")) for e in events
        }
        # The trace build skips what it cannot time but still renders
        # the healthy worker's slices.
        trace = sweep_trace(tmp_path / "ckpt", tmp_path / "q")
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert len(slices) == 1
        assert slices[0]["args"]["key"] == "k1"

    def test_malformed_timing_sidecar_is_skipped(self, tmp_path):
        store = CheckpointStore(tmp_path / "ckpt")
        store.store_timing("good", 1.0, worker="w", started_at=10.0)
        # Nonsense field types in another cell's sidecar.
        (tmp_path / "ckpt" / "bad.time.json").write_text(
            '{"seconds": "fast", "worker": "w", "started_at": null}'
        )
        trace = sweep_trace(tmp_path / "ckpt")
        slices = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert [s["args"]["key"] for s in slices] == ["good"]
