"""Tensor-parallel layer equivalence with the serial transformer layer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.runtime.layers import TransformerLayer
from repro.runtime.tensor_parallel import TensorParallelLayer

RNG = np.random.default_rng(11)
HIDDEN, HEADS = 16, 4


@pytest.fixture
def reference():
    return TransformerLayer(RNG, HIDDEN, HEADS)


@pytest.mark.parametrize("n_tp", [1, 2, 4])
class TestForwardEquivalence:
    def test_forward_matches_serial(self, reference, n_tp):
        tp = TensorParallelLayer(reference, n_tp)
        x = RNG.normal(size=(2, 3, HIDDEN))
        serial = reference.forward(x.copy(), 0)
        reference._cache.clear()
        for child in reference.children.values():
            child._cache.clear()
        parallel = tp.forward(x)
        np.testing.assert_allclose(parallel, serial, atol=1e-10)

    def test_backward_input_grad_matches_serial(self, reference, n_tp):
        tp = TensorParallelLayer(reference, n_tp)
        x = RNG.normal(size=(1, 3, HIDDEN))
        dy = RNG.normal(size=(1, 3, HIDDEN))

        reference.zero_grads()
        serial_y = reference.forward(x.copy(), 0)
        serial_dx = reference.backward(dy.copy(), 0)

        tp.forward(x)
        parallel_dx, _ = tp.backward(dy)
        np.testing.assert_allclose(parallel_dx, serial_dx, atol=1e-10)
        del serial_y

    def test_param_grads_reassemble(self, reference, n_tp):
        """Concatenated per-rank gradients equal the serial gradients."""
        tp = TensorParallelLayer(reference, n_tp)
        x = RNG.normal(size=(1, 3, HIDDEN))
        dy = RNG.normal(size=(1, 3, HIDDEN))

        reference.zero_grads()
        reference.forward(x.copy(), 0)
        reference.backward(dy.copy(), 0)

        tp.forward(x)
        _, grads = tp.backward(dy)

        # MLP fc1 is column-parallel: gradients concatenate on columns.
        fc1 = np.concatenate([g["W1"] for g in grads], axis=-1)
        np.testing.assert_allclose(fc1, reference.grads["fc1.W"], atol=1e-10)
        # fc2 is row-parallel: gradients concatenate on rows.
        fc2 = np.concatenate([g["W2"] for g in grads], axis=0)
        np.testing.assert_allclose(fc2, reference.grads["fc2.W"], atol=1e-10)
        # Wo row-parallel.
        wo = np.concatenate([g["Wo"] for g in grads], axis=0)
        np.testing.assert_allclose(wo, reference.grads["attn.Wo"], atol=1e-10)
        # Replicated layer norms: per-rank shares sum to the serial grad.
        g1 = sum(g["g1"] for g in grads)
        np.testing.assert_allclose(g1, reference.grads["ln1.g"], atol=1e-10)


class TestShardingProperties:
    def test_params_divided_evenly(self, reference):
        tp = TensorParallelLayer(reference, 4)
        per_rank = tp.params_per_rank()
        serial = reference.n_params()
        # Each rank holds ~1/4 of the layer (layer norms replicated).
        assert max(per_rank) < serial / 4 * 1.2
        assert len(set(per_rank)) == 1

    def test_heads_must_divide(self, reference):
        with pytest.raises(ValueError, match="divisible"):
            TensorParallelLayer(reference, 3)

    def test_backward_requires_forward(self, reference):
        tp = TensorParallelLayer(reference, 2)
        with pytest.raises(RuntimeError, match="before forward"):
            tp.backward(np.zeros((1, 2, HIDDEN)))

    def test_beta_min_is_inverse_ntp(self):
        # Section 3.3: TP has no batch requirement, so beta_min = 1/N_TP —
        # here meaning a single sample can be processed by all ranks.
        ref = TransformerLayer(RNG, HIDDEN, HEADS)
        tp = TensorParallelLayer(ref, 4)
        x = RNG.normal(size=(1, 2, HIDDEN))
        out = tp.forward(x)
        assert out.shape == x.shape
