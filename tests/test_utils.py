"""Tests for formatting helpers and the ASCII table renderer."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.tables import ascii_table
from repro.utils.units import GB, fmt_bytes, fmt_count, fmt_flops, fmt_time


class TestFmtCount:
    def test_billions(self):
        assert fmt_count(52e9) == "52.00B"

    def test_trillions(self):
        assert fmt_count(1.2e12) == "1.20T"

    def test_millions(self):
        assert fmt_count(6.6e6) == "6.60M"

    def test_small(self):
        assert fmt_count(42) == "42"


class TestFmtBytes:
    def test_gb(self):
        assert fmt_bytes(32 * GB) == "32.00 GB"

    def test_plain(self):
        assert fmt_bytes(12) == "12 B"

    def test_tb(self):
        assert fmt_bytes(2**41) == "2.00 TB"


class TestFmtFlops:
    def test_tflops(self):
        assert fmt_flops(125e12) == "125.00 Tflop/s"

    def test_pflops(self):
        assert fmt_flops(2e15) == "2.00 Pflop/s"


class TestFmtTime:
    def test_days(self):
        assert fmt_time(2 * 86400) == "2.00 d"

    def test_ms(self):
        assert fmt_time(0.0123) == "12.300 ms"

    def test_us(self):
        assert fmt_time(5e-6) == "5.0 us"

    def test_negative(self):
        assert fmt_time(-60.0) == "-1.00 min"

    @given(st.floats(min_value=1e-9, max_value=1e9))
    def test_never_raises(self, seconds):
        assert isinstance(fmt_time(seconds), str)


class TestAsciiTable:
    def test_basic_alignment(self):
        table = ascii_table(["a", "bb"], [["x", 1], ["yy", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_title(self):
        assert ascii_table(["h"], [["v"]], title="T").startswith("T\n")

    def test_float_formatting(self):
        assert "3.14" in ascii_table(["x"], [[3.14159]])

    def test_row_length_mismatch(self):
        with pytest.raises(ValueError, match="cells"):
            ascii_table(["a", "b"], [["only one"]])

    def test_empty_rows(self):
        table = ascii_table(["col"], [])
        assert "col" in table
