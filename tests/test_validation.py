"""Tests for the schedule validator: it must catch every structural bug."""

from __future__ import annotations

import pytest

from repro.core.ops import backward, forward
from repro.core.schedules.base import Schedule, build_schedule
from repro.core.validation import ScheduleError, analyze_schedule, validate_schedule
from repro.parallel.config import ScheduleKind


def _schedule(orders, n_pp, n_mb, n_loop=1):
    return Schedule(
        kind=ScheduleKind.GPIPE,
        n_pp=n_pp,
        n_microbatches=n_mb,
        n_loop=n_loop,
        device_orders=tuple(tuple(o) for o in orders),
    )


class TestStructuralChecks:
    def test_missing_op_detected(self):
        orders = [[forward(0, 0), backward(0, 0)], [forward(0, 1)]]
        with pytest.raises(ScheduleError, match="missing"):
            validate_schedule(_schedule(orders, 2, 1))

    def test_duplicate_op_detected(self):
        orders = [
            [forward(0, 0), forward(0, 0), backward(0, 0)],
            [forward(0, 1), backward(0, 1)],
        ]
        with pytest.raises(ScheduleError, match="duplicate"):
            validate_schedule(_schedule(orders, 2, 1))

    def test_wrong_device_detected(self):
        orders = [
            [forward(0, 1), backward(0, 1)],
            [forward(0, 0), backward(0, 0)],
        ]
        with pytest.raises(ScheduleError, match="lives on rank"):
            validate_schedule(_schedule(orders, 2, 1))

    def test_backward_before_forward_detected(self):
        orders = [[backward(0, 0), forward(0, 0)]]
        with pytest.raises(ScheduleError, match="before its forward"):
            validate_schedule(_schedule(orders, 1, 1))

    def test_out_of_range_op_detected(self):
        orders = [[forward(0, 0), backward(0, 0), forward(5, 0)]]
        with pytest.raises(ScheduleError, match="outside"):
            validate_schedule(_schedule(orders, 1, 1))


class TestDeadlockDetection:
    def test_cross_device_deadlock(self):
        # Rank 0 wants the backward before sending its forward onward:
        # B(0,0) needs B(0,1), which needs F(0,1), which needs F(0,0) —
        # but rank 0 refuses to run F(0,0) first.
        orders = [
            [backward(0, 0), forward(0, 0)],
            [forward(0, 1), backward(0, 1)],
        ]
        with pytest.raises(ScheduleError):
            validate_schedule(_schedule(orders, 2, 1))

    def test_deadlock_message_names_blocked_ranks(self):
        orders = [
            [forward(0, 0), backward(0, 0), forward(1, 0), backward(1, 0)],
            # Rank 1 runs micro-batch 1 first, but backward 1 needs
            # backward on... actually B(1,1) is fine; craft a true cycle:
            [backward(1, 1), forward(1, 1), forward(0, 1), backward(0, 1)],
        ]
        with pytest.raises(ScheduleError, match="before its forward"):
            validate_schedule(_schedule(orders, 2, 2))


class TestAnalysis:
    def test_makespan_gpipe_unit_times(self):
        # f=1, b=2: makespan = 3 * (N_mb + N_PP - 1).
        s = build_schedule(ScheduleKind.GPIPE, 4, 8)
        analysis = analyze_schedule(s, forward_time=1.0, backward_time=2.0)
        assert analysis.makespan == pytest.approx(3 * (8 + 4 - 1))

    def test_makespan_looped_unit_times(self):
        s = build_schedule(ScheduleKind.BREADTH_FIRST, 4, 8, 4)
        analysis = analyze_schedule(s, forward_time=1.0, backward_time=2.0)
        assert analysis.makespan == pytest.approx(3 * (8 * 4 + 4 - 1))

    def test_compute_per_device_equal_for_uniform_stages(self):
        s = build_schedule(ScheduleKind.ONE_F_ONE_B, 4, 8)
        analysis = analyze_schedule(s)
        assert len(set(analysis.compute_per_device)) == 1

    def test_finish_times_complete(self):
        s = build_schedule(ScheduleKind.DEPTH_FIRST, 2, 4, 2)
        analysis = analyze_schedule(s)
        assert len(analysis.finish_times) == s.total_ops

    def test_invalid_durations(self):
        s = build_schedule(ScheduleKind.GPIPE, 2, 2)
        with pytest.raises(ValueError, match="positive"):
            analyze_schedule(s, forward_time=0.0)

    def test_single_device_no_bubble(self):
        s = build_schedule(ScheduleKind.GPIPE, 1, 4)
        assert analyze_schedule(s).bubble_fraction == pytest.approx(0.0)
