"""Level-2 repo contract linter: clean tree, dirty sources, CLI exit.

The linter's own contract has the same two halves as the program
verifier's: the committed tree must lint clean (its findings gate CI),
and seeded contract violations — nondeterminism primitives, unsorted
hashing, set iteration, bare excepts, missing serializer fields,
unregistered subclasses — must each fire their rule.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.verify.lint import (
    KEY_DERIVATION_SOURCES,
    lint_repo,
    lint_sources,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SERIALIZE = "src/repro/search/service/serialize.py"


@pytest.fixture(scope="module")
def clean_sources():
    from repro.verify.lint import _scan_paths

    return {
        path.relative_to(REPO_ROOT).as_posix(): path.read_text(
            encoding="utf-8"
        )
        for path in _scan_paths(REPO_ROOT)
        if path.is_file()
    }


def test_committed_tree_lints_clean():
    findings = lint_repo(REPO_ROOT)
    assert findings == [], "\n".join(f.format() for f in findings)


def test_missing_configured_module_is_a_finding(clean_sources):
    sources = dict(clean_sources)
    del sources[SERIALIZE]
    rules = {f.rule for f in lint_sources(sources)}
    assert "L001" in rules


def _with_appended(clean_sources, path, text):
    sources = dict(clean_sources)
    sources[path] = sources[path] + text
    return sources


@pytest.mark.parametrize(
    "snippet, rule",
    [
        ("\nimport time\n_STAMP = time.time()\n", "L301"),
        ("\nimport random\n_SALT = random.random()\n", "L301"),
        ("\n_BAD_HASH = hash((1, 2))\n", "L301"),
        ("\nimport json as _json\n_RAW = json.dumps({'a': 1})\n", "L302"),
        ("\n_ORDERED = [x for x in {1, 2, 3}]\n", "L303"),
    ],
)
def test_nondeterminism_in_key_derivation_modules(clean_sources, snippet, rule):
    assert SERIALIZE in KEY_DERIVATION_SOURCES
    sources = _with_appended(clean_sources, SERIALIZE, snippet)
    rules = {f.rule for f in lint_sources(sources)}
    assert rule in rules


def test_bare_except_in_service_code(clean_sources):
    snippet = "\ndef _swallow():\n    try:\n        pass\n    except:\n        pass\n"
    sources = _with_appended(
        clean_sources, "src/repro/search/service/service.py", snippet
    )
    rules = {f.rule for f in lint_sources(sources)}
    assert "L401" in rules


def test_unhandled_schedule_kind_is_a_finding(clean_sources):
    sources = dict(clean_sources)
    path = "src/repro/parallel/config.py"
    sources[path] = sources[path].replace(
        '    HYBRID = "hybrid"',
        '    HYBRID = "hybrid"\n    MUTANT = "mutant"',
        1,
    )
    findings = lint_sources(sources)
    assert any(
        f.rule == "L202" and "MUTANT" in f.message for f in findings
    )


def test_not_serialized_marker_suppresses_coverage(clean_sources):
    # SearchSettings.verify_winners is the real in-tree use of the
    # marker: never serialized, must not trip L101.
    sources = dict(clean_sources)
    cell = "src/repro/search/cell.py"
    assert "lint: not-serialized" in sources[cell]
    assert not any(
        f.rule == "L101" and "verify_winners" in f.message
        for f in lint_sources(sources)
    )
    # Removing the marker makes the same field a finding.
    sources[cell] = sources[cell].replace(
        "# lint: not-serialized (post-check knob)", "", 1
    )
    assert any(
        f.rule == "L101" and "verify_winners" in f.message
        for f in lint_sources(sources)
    )


class TestScalarCostRule:
    GRID = "src/repro/search/grid.py"

    def test_scalar_table_call_in_hot_path_is_a_finding(self, clean_sources):
        snippet = (
            "\ndef _sneaky(spec, cluster, calibration, impl):\n"
            "    return stage_time_table(\n"
            "        spec, cluster, calibration, impl, 2, 1, 1, 1\n"
            "    )\n"
        )
        sources = _with_appended(clean_sources, self.GRID, snippet)
        findings = lint_sources(sources)
        assert any(
            f.rule == "L502" and self.GRID in f.location for f in findings
        )

    def test_private_table_call_also_fires(self, clean_sources):
        snippet = (
            "\nfrom repro.sim import cost as _cost\n"
            "def _sneakier(key):\n"
            "    return _cost._stage_time_table(*key)\n"
        )
        sources = _with_appended(
            clean_sources, "src/repro/sim/cost_batch.py", snippet
        )
        rules = {f.rule for f in lint_sources(sources)}
        assert "L502" in rules

    def test_marker_suppresses_the_seam(self, clean_sources):
        snippet = (
            "\ndef _seam(key):\n"
            "    return stage_time_table(*key)  # lint: scalar-cost-ok\n"
        )
        sources = _with_appended(clean_sources, self.GRID, snippet)
        assert not any(f.rule == "L502" for f in lint_sources(sources))

    def test_cache_object_access_never_flags(self, clean_sources):
        # The batch seam itself: .seed/.seeded/.cache_info are attribute
        # calls on the cache object, not scalar pricing.  The committed
        # tree already uses all of them and lints clean
        # (test_committed_tree_lints_clean), but hold the distinction
        # explicitly against a rewrite of the rule.
        snippet = (
            "\ndef _peek():\n"
            "    return stage_time_table.cache_info()\n"
        )
        sources = _with_appended(clean_sources, self.GRID, snippet)
        assert not any(f.rule == "L502" for f in lint_sources(sources))


class TestBlockingOnLoopRule:
    CORE = "src/repro/planner/core.py"
    HTTP = "src/repro/planner/http.py"

    def test_blocking_call_in_coroutine_is_a_finding(self, clean_sources):
        snippet = (
            "\nasync def _sneaky(self, key):\n"
            "    return self._store.load(key)\n"
        )
        sources = _with_appended(clean_sources, self.CORE, snippet)
        findings = lint_sources(sources)
        assert any(
            f.rule == "L503" and self.CORE in f.location for f in findings
        )

    def test_filesystem_and_sleep_calls_fire(self, clean_sources):
        snippet = (
            "\nimport time\n"
            "async def _stall(path):\n"
            "    time.sleep(0.1)\n"
            "    return open(path).read()\n"
        )
        sources = _with_appended(clean_sources, self.HTTP, snippet)
        flagged = [f for f in lint_sources(sources) if f.rule == "L503"]
        assert len(flagged) == 2

    def test_marker_suppresses_a_deliberate_call(self, clean_sources):
        snippet = (
            "\nasync def _tiny(self, key):\n"
            "    return self._store.load(key)  # lint: blocking-ok\n"
        )
        sources = _with_appended(clean_sources, self.CORE, snippet)
        assert not any(f.rule == "L503" for f in lint_sources(sources))

    def test_sync_functions_and_references_never_flag(self, clean_sources):
        # Blocking work is fine off the loop (sync helpers) and as a
        # *reference* handed to run_in_executor — only direct on-loop
        # invocation is the defect.  asyncio.sleep is the sanctioned
        # async form and must not trip the time.sleep ban.
        snippet = (
            "\nimport asyncio\n"
            "def _helper(self, key):\n"
            "    return self._store.load(key)\n"
            "async def _offloaded(self, loop, key):\n"
            "    await asyncio.sleep(0)\n"
            "    return await loop.run_in_executor(\n"
            "        None, self._store.load, key\n"
            "    )\n"
        )
        sources = _with_appended(clean_sources, self.CORE, snippet)
        assert not any(f.rule == "L503" for f in lint_sources(sources))

    def test_nested_sync_helper_inside_coroutine_never_flags(
        self, clean_sources
    ):
        # The CLI-test idiom: define a sync closure inside the coroutine
        # and hand it to an executor.  The closure body is a separate
        # frame, not loop-time code.
        snippet = (
            "\nasync def _with_closure(self, loop, key):\n"
            "    def _read():\n"
            "        return self._store.load(key)\n"
            "    return await loop.run_in_executor(None, _read)\n"
        )
        sources = _with_appended(clean_sources, self.HTTP, snippet)
        assert not any(f.rule == "L503" for f in lint_sources(sources))


class TestUnhashedLoadRule:
    COST_STORE = "src/repro/sim/cost_store.py"
    CHECKPOINT = "src/repro/search/service/checkpoint.py"

    def test_unvalidated_json_load_is_a_finding(self, clean_sources):
        snippet = (
            "\ndef _sneaky_load(path):\n"
            "    import json\n"
            "    return json.loads(Path(path).read_bytes())\n"
        )
        sources = _with_appended(clean_sources, self.COST_STORE, snippet)
        findings = lint_sources(sources)
        assert any(
            f.rule == "L504" and self.COST_STORE in f.location
            for f in findings
        )

    def test_unvalidated_struct_unpack_also_fires(self, clean_sources):
        snippet = (
            "\ndef _raw_decode(blob):\n"
            "    return struct.unpack('<4i', blob[:16])\n"
        )
        sources = _with_appended(clean_sources, self.CHECKPOINT, snippet)
        rules = {f.rule for f in lint_sources(sources)}
        assert "L504" in rules

    def test_marker_suppresses_a_prevalidated_helper(self, clean_sources):
        snippet = (
            "\ndef _decode_checked(blob):\n"
            "    return struct.unpack('<4i', blob)  # lint: unhashed-load-ok\n"
        )
        sources = _with_appended(clean_sources, self.COST_STORE, snippet)
        assert not any(f.rule == "L504" for f in lint_sources(sources))

    def test_digest_verified_frame_never_flags(self, clean_sources):
        snippet = (
            "\ndef _verified_load(blob, expected):\n"
            "    import json\n"
            "    if hashlib.sha256(blob).hexdigest() != expected:\n"
            "        raise ValueError('content hash mismatch')\n"
            "    return json.loads(blob)\n"
        )
        sources = _with_appended(clean_sources, self.COST_STORE, snippet)
        assert not any(f.rule == "L504" for f in lint_sources(sources))

    def test_key_echo_check_counts_as_validation(self, clean_sources):
        # The checkpoint pattern: the filename is the content hash and
        # the envelope must echo it.  CheckpointStore.load/
        # load_timing_record rely on this (the committed tree lints
        # clean); hold the signal explicitly against a rule rewrite.
        snippet = (
            "\ndef _keyed_load(path, key):\n"
            "    data = json.loads(path.read_bytes())\n"
            "    if data.get('key') != key:\n"
            "        return None\n"
            "    return data\n"
        )
        sources = _with_appended(clean_sources, self.CHECKPOINT, snippet)
        assert not any(f.rule == "L504" for f in lint_sources(sources))

    def test_removing_parse_digest_check_fires(self, clean_sources):
        # The mutation the rule exists for: strip the sha256
        # verification out of CostStore._parse and its own json/struct
        # reads become findings.
        sources = dict(clean_sources)
        guard = (
            '        digest = hashlib.sha256(data).hexdigest()\n'
            '        if digest != header.get("sha256"):\n'
            '            raise ValueError("content hash mismatch")\n'
        )
        assert guard in sources[self.COST_STORE]
        sources[self.COST_STORE] = sources[self.COST_STORE].replace(
            guard, "", 1
        )
        findings = lint_sources(sources)
        assert any(
            f.rule == "L504" and self.COST_STORE in f.location
            for f in findings
        )


def test_cli_lint_and_zoo_exit_zero(capsys):
    from repro.verify.cli import main

    assert main(["--lint", "--zoo"]) == 0
    out = capsys.readouterr().out
    assert "clean" in out
    assert "verify: OK" in out
