"""Level-1 verifier: schedule zoo must be clean, corruptions must fire.

Two halves of the same argument:

- **Soundness-in-practice**: every schedule kind the repo can build,
  across a small (n_pp, n_microbatches, n_loop[, sequence_size]) grid,
  lowers to a program the verifier proves clean (no false positives).
- **Sensitivity**: the mutation harness seeds known corruption classes
  (dropped send, duplicated/dropped backward, misplaced forward,
  reordered 1F1B slot, dependency cycle) and each must be flagged by
  the expected rule (no false negatives for the defect classes the
  verifier claims to cover).
"""

from __future__ import annotations

import pytest

from repro.core.schedules.base import schedule_for
from repro.hardware.cluster import DGX1_CLUSTER_64
from repro.models.presets import MODEL_6_6B
from repro.verify.cli import zoo_configs
from repro.verify.memory_static import static_in_flight
from repro.verify.mutation import (
    LINT_MUTATIONS,
    PROGRAM_MUTATIONS,
    run_mutation_tests,
)
from repro.verify.program import verify_config

ZOO = list(zoo_configs())


def _zoo_id(config) -> str:
    tag = f"{config.schedule.value}-pp{config.n_pp}-mb{config.n_microbatches}"
    if config.n_loop != 1:
        tag += f"-loop{config.n_loop}"
    if config.sequence_size is not None:
        tag += f"-seq{config.sequence_size}"
    return tag


@pytest.mark.parametrize("config", ZOO, ids=_zoo_id)
def test_schedule_zoo_verifies_clean(config):
    report = verify_config(MODEL_6_6B, config, DGX1_CLUSTER_64)
    assert report.ok, report.format()
    assert not report.findings, report.format()


def test_zoo_covers_every_schedule_kind():
    from repro.parallel.config import ScheduleKind

    assert {c.schedule for c in ZOO} == set(ScheduleKind)


def test_static_in_flight_matches_schedule_peaks():
    from repro.sim.cost import CostModel
    from repro.sim.implementation import default_implementation_for
    from repro.sim.program import build_program

    for config in ZOO[:6]:
        schedule = schedule_for(config)
        cost = CostModel(
            spec=MODEL_6_6B,
            config=config,
            cluster=DGX1_CLUSTER_64,
            implementation=default_implementation_for(config.schedule),
        )
        streams = build_program(cost, schedule, record_events=False)
        peaks = static_in_flight(streams, schedule.n_pp)
        assert peaks == [
            schedule.max_in_flight(rank) for rank in range(schedule.n_pp)
        ]


@pytest.fixture(scope="module")
def mutation_results():
    return {r.name: r for r in run_mutation_tests()}


@pytest.mark.parametrize(
    "name",
    [m.name for m in PROGRAM_MUTATIONS] + [m.name for m in LINT_MUTATIONS],
)
def test_every_seeded_corruption_is_detected(mutation_results, name):
    result = mutation_results[name]
    assert result.detected, result.format()


def test_mutation_baselines_are_clean(mutation_results):
    for name, result in mutation_results.items():
        if name.startswith("baseline-"):
            assert not result.fired, result.format()


def test_winner_verification_passes_on_clean_search():
    from repro.parallel.config import Method
    from repro.search.cell import SearchSettings
    from repro.search.grid import best_configuration

    outcome = best_configuration(
        MODEL_6_6B,
        DGX1_CLUSTER_64,
        Method.BREADTH_FIRST,
        32,
        settings=SearchSettings(verify_winners=True),
    )
    assert outcome.best is not None
