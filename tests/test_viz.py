"""Tests for the ASCII visualization helpers."""

from __future__ import annotations

import pytest

from repro.core.placement import Placement
from repro.sim.timeline import TimelineEvent
from repro.viz.chart import ascii_line_chart
from repro.viz.timeline import render_placement, render_timeline


def ev(rank, stream, start, end, label, category):
    return TimelineEvent(rank, stream, start, end, label, category)


class TestTimelineRendering:
    def test_empty(self):
        assert "empty" in render_timeline([])

    def test_forward_shows_microbatch_digit(self):
        out = render_timeline(
            [ev(0, "compute", 0.0, 1.0, "F(mb=3, s=0)", "forward")], width=10
        )
        assert "3" in out

    def test_backward_uppercase_letters_past_nine(self):
        out = render_timeline(
            [ev(0, "compute", 0.0, 1.0, "B(mb=10, s=0)", "backward")], width=10
        )
        assert "A" in out

    def test_streams_get_own_rows(self):
        events = [
            ev(0, "compute", 0.0, 1.0, "F(mb=0, s=0)", "forward"),
            ev(0, "dp", 0.5, 1.0, "reduce", "reduce"),
        ]
        out = render_timeline(events, width=20)
        assert out.count("rank 0") == 2
        assert "G" in out

    def test_optimizer_glyph(self):
        out = render_timeline(
            [ev(1, "compute", 0.0, 1.0, "optimizer", "optimizer")], width=10
        )
        assert "S" in out

    def test_width_validation(self):
        with pytest.raises(ValueError, match="width"):
            render_timeline(
                [ev(0, "compute", 0.0, 1.0, "x", "forward")], width=5
            )

    def test_event_duration_property(self):
        assert ev(0, "c", 1.0, 3.5, "", "forward").duration == 2.5


class TestPlacementRendering:
    def test_lists_all_devices(self):
        out = render_placement(Placement(8, 4, 2))
        for device in range(4):
            assert f"GPU {device}" in out

    def test_marks_looping(self):
        assert "looping" in render_placement(Placement(8, 2, 2))
        assert "standard" in render_placement(Placement(8, 2, 1))


class TestChart:
    def test_contains_legend_and_bounds(self):
        out = ascii_line_chart(
            {"alpha": [(1, 10.0), (2, 20.0)], "beta": [(1, 15.0)]},
            title="T",
        )
        assert "T" in out
        assert "alpha" in out and "beta" in out
        assert "20.0" in out and "10.0" in out

    def test_no_data(self):
        assert ascii_line_chart({"x": []}) == "(no data)"

    def test_flat_series_ok(self):
        out = ascii_line_chart({"flat": [(1, 5.0), (2, 5.0)]})
        assert "flat" in out

    def test_too_small_rejected(self):
        with pytest.raises(ValueError, match="small"):
            ascii_line_chart({"x": [(1, 1.0)]}, height=1)
